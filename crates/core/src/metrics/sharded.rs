//! Whole-cohort metric evaluation on the shard-wise parallel engine.
//!
//! Every function here is the sharded counterpart of a serial metric in this
//! module's siblings, decomposed into **per-shard kernels plus an ordered
//! combine** on the [`ShardSource`] engine — so the same code path serves
//! the in-memory [`crate::shard::ShardedDataset`] and the out-of-core
//! `fair_store::ShardStore`:
//!
//! 1. *score* — per-shard scoring kernels (embarrassingly parallel,
//!    bit-for-bit the serial scores),
//! 2. *select* — per-shard partial top-`m` merged under the serial strict
//!    total order ([`crate::ranking::sharded::top_m`]), so the selected set
//!    and order are exactly the full sort's,
//! 3. *measure* — integer count reductions (exact for every shard size) or
//!    per-shard partial sums combined in shard order (bit-for-bit for
//!    binary/dyadic fairness values, reassociation-ulp-deterministic
//!    otherwise); selection centroids are accumulated serially in rank order,
//!    exactly as the serial metrics do.
//!
//! Unlike the serial metrics, which take a pre-built
//! [`RankedSelection`](crate::ranking::RankedSelection), these functions are
//! end-to-end: they take the ranker and bonus vector and perform scoring,
//! selection and measurement through the engine, because on large cohorts the
//! full sort the serial callers pre-pay is precisely the cost being removed.

use crate::dca::scratch::EvalScratch;
use crate::error::{FairError, Result};
use crate::metrics::LogDiscountConfig;
use crate::ranking::sharded::{base_scores, effective_scores, selected_at_k, top_m};
use crate::ranking::topk::selection_size;
use crate::ranking::Ranker;
use crate::shard::ShardSource;

/// Scratch buffers reused across sharded metric evaluations (scores,
/// selection, mask), so repeated evaluation — the sharded full-DCA loop —
/// avoids re-allocating cohort-sized vectors.
#[derive(Debug, Clone, Default)]
pub struct ShardedEvalScratch {
    /// Effective scores, global row order.
    pub(crate) scores: Vec<f64>,
    /// Global top-k selection mask.
    pub(crate) mask: Vec<bool>,
    /// `(shard, rank)` pairs of the selection, sorted by shard — the
    /// shard-sequential gather plan.
    pub(crate) order: Vec<(usize, usize)>,
    /// Gathered fairness rows of the selection, in rank order.
    pub(crate) gathered: Vec<f64>,
}

impl ShardedEvalScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Copy the fairness rows at `positions` (global indices) into the dense
/// `positions.len() × num_fairness` buffer `gathered`, **visiting each shard
/// exactly once** ([`crate::shard::for_each_shard_run`]) — positions land in
/// rank order, which hops shards arbitrarily, so a caching out-of-core
/// source would otherwise re-page a shard per row. Only the copy is
/// regrouped; `gathered` is laid out in the given position order, so callers
/// accumulate in exactly the serial order (bit-for-bit) while the storage
/// layer sees a shard-sequential access pattern. `order` and `gathered` are
/// caller-owned so the DCA hot loop reuses them across steps.
fn gather_fairness_rows_into<S: ShardSource + ?Sized>(
    data: &S,
    positions: &[usize],
    order: &mut Vec<(usize, usize)>,
    gathered: &mut Vec<f64>,
) {
    let dims = data.schema().num_fairness();
    gathered.clear();
    gathered.resize(positions.len() * dims, 0.0);
    // (shard, rank) pairs sorted by shard: one with_shard per distinct shard.
    order.clear();
    order.extend(
        positions
            .iter()
            .enumerate()
            .map(|(rank, &p)| (p / data.shard_size(), rank)),
    );
    order.sort_unstable();
    crate::shard::for_each_shard_run(
        data,
        order,
        |t| t.0,
        |view, run| {
            let d = view.data();
            for &(_, rank) in run {
                let local = positions[rank] - view.offset();
                gathered[rank * dims..(rank + 1) * dims].copy_from_slice(d.fairness_row(local));
            }
        },
    );
}

/// Mean of the fairness rows at `positions` (global indices), accumulated
/// serially **in the given order** — the same summation order the serial
/// selection centroids use, so the result is bit-for-bit identical to
/// [`crate::dataset::SampleView::fairness_centroid_of`] on the flattened
/// dataset. Rows are pre-gathered shard by shard
/// ([`gather_fairness_rows_into`]) into the scratch buffers, so an
/// out-of-core source pages each shard at most once and the DCA hot loop
/// allocates nothing in the steady state.
fn centroid_of_positions_into<S: ShardSource + ?Sized>(
    data: &S,
    positions: &[usize],
    scratch: &mut ShardedEvalScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let dims = data.schema().num_fairness();
    out.clear();
    out.resize(dims, 0.0);
    if positions.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    gather_fairness_rows_into(data, positions, &mut scratch.order, &mut scratch.gathered);
    for row in scratch.gathered.chunks_exact(dims) {
        for (a, v) in out.iter_mut().zip(row) {
            *a += v;
        }
    }
    for a in out.iter_mut() {
        *a /= positions.len() as f64;
    }
    Ok(())
}

/// Disparity of the top-`k` selection (Definition 3): selection centroid
/// minus population centroid, the population side reduced shard-wise.
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn disparity_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    disparity_at_k_into(
        data,
        ranker,
        bonus,
        k,
        &mut ShardedEvalScratch::new(),
        &mut out,
    )?;
    Ok(out)
}

/// [`disparity_at_k`] reusing caller-provided scratch buffers.
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn disparity_at_k_into<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
    scratch: &mut ShardedEvalScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let all = data.fairness_centroid()?;
    crate::ranking::sharded::effective_scores_into(data, ranker, bonus, &mut scratch.scores);
    let selected = selected_at_k(data, &scratch.scores, k)?;
    centroid_of_positions_into(data, &selected, scratch, out)?;
    for (s, a) in out.iter_mut().zip(&all) {
        *s -= a;
    }
    Ok(())
}

/// nDCG@k of the bonus-adjusted ranking against the original (zero-bonus)
/// ranking — the sharded counterpart of [`crate::metrics::ndcg_at_k`], with
/// both top-`k` prefixes found by per-shard partial selection instead of full
/// sorts.
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn ndcg_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<f64> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let count = selection_size(data.len(), k)?;
    let base = base_scores(data, ranker);
    // Same non-negativity shift as the serial metric, computed in the same
    // left-to-right order.
    let min = base.iter().copied().fold(f64::INFINITY, f64::min);
    let shift = if min < 0.0 { -min } else { 0.0 };

    let original = top_m(data, &base, count);
    // The adjusted scores reuse the base vector (same arithmetic as scoring
    // from scratch, bit for bit) instead of re-running the ranker.
    let adjusted_scores = crate::ranking::sharded::adjust_base_scores(data, &base, bonus);
    let measured = top_m(data, &adjusted_scores, count);

    let ideal_weights: Vec<f64> = original.iter().map(|&p| base[p] + shift).collect();
    let measured_weights: Vec<f64> = measured.iter().map(|&p| base[p] + shift).collect();
    let ideal = crate::metrics::dcg(&ideal_weights);
    if ideal == 0.0 {
        return Ok(1.0);
    }
    Ok((crate::metrics::dcg(&measured_weights) / ideal).clamp(0.0, 1.0))
}

/// Logarithmically discounted disparity (Section IV-E) — scoring and
/// checkpoint-prefix selection run shard-wise; the running prefix sums walk
/// the merged ranked prefix in rank order, exactly like the serial metric.
///
/// # Errors
/// Returns an error on an empty dataset or invalid configuration.
pub fn log_discounted_disparity<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    config: &LogDiscountConfig,
) -> Result<Vec<f64>> {
    config.validate()?;
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let checkpoints = config.checkpoints(data.len());
    let last = checkpoints.last().copied().unwrap_or(0);
    let scores = effective_scores(data, ranker, bonus);
    let prefix = top_m(data, &scores, last);
    // One shard-sequential gather for the whole ranked prefix: the running
    // prefix sums below walk it in rank order without re-paging shards.
    let mut order = Vec::new();
    let mut prefix_rows = Vec::new();
    gather_fairness_rows_into(data, &prefix, &mut order, &mut prefix_rows);

    let dims = data.schema().num_fairness();
    let mut out = vec![0.0; dims];
    let all = data.fairness_centroid()?;
    let mut running = vec![0.0; dims];
    let mut consumed = 0_usize;
    let mut z = 0.0;
    for &count in &checkpoints {
        debug_assert!(count >= consumed, "checkpoints must be increasing");
        let weight = 1.0 / ((count as f64) + 1.0).log2();
        for row in prefix_rows[consumed * dims..count * dims].chunks_exact(dims) {
            for (a, v) in running.iter_mut().zip(row) {
                *a += v;
            }
        }
        consumed = count;
        if count == 0 {
            return Err(FairError::EmptyDataset);
        }
        for ((o, r), a) in out.iter_mut().zip(&running).zip(&all) {
            *o += weight * (r / count as f64 - a);
        }
        z += weight;
    }
    if z > 0.0 {
        for a in out.iter_mut() {
            *a /= z;
        }
    }
    Ok(out)
}

/// Per-shard selection/label counts for the rate-based metrics, reduced by
/// exact integer addition.
#[derive(Clone, Default)]
struct GroupCounts {
    group_neg: Vec<usize>,
    group_fp: Vec<usize>,
    total_neg: usize,
    total_fp: usize,
    member_total: Vec<usize>,
    member_selected: Vec<usize>,
    other_total: Vec<usize>,
    other_selected: Vec<usize>,
}

impl GroupCounts {
    fn new(dims: usize) -> Self {
        Self {
            group_neg: vec![0; dims],
            group_fp: vec![0; dims],
            member_total: vec![0; dims],
            member_selected: vec![0; dims],
            other_total: vec![0; dims],
            other_selected: vec![0; dims],
            ..Self::default()
        }
    }

    fn merge(mut self, other: &Self) -> Self {
        for (a, b) in self.group_neg.iter_mut().zip(&other.group_neg) {
            *a += b;
        }
        for (a, b) in self.group_fp.iter_mut().zip(&other.group_fp) {
            *a += b;
        }
        for (a, b) in self.member_total.iter_mut().zip(&other.member_total) {
            *a += b;
        }
        for (a, b) in self.member_selected.iter_mut().zip(&other.member_selected) {
            *a += b;
        }
        for (a, b) in self.other_total.iter_mut().zip(&other.other_total) {
            *a += b;
        }
        for (a, b) in self.other_selected.iter_mut().zip(&other.other_selected) {
            *a += b;
        }
        self.total_neg += other.total_neg;
        self.total_fp += other.total_fp;
        self
    }
}

/// Build the global top-`k` selection mask into `scratch`, then tally
/// per-group counts shard by shard. `need_labels` makes unlabelled rows an
/// error (the FPR metrics).
fn selection_counts<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
    need_labels: bool,
    scratch: &mut ShardedEvalScratch,
) -> Result<GroupCounts> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    crate::ranking::sharded::effective_scores_into(data, ranker, bonus, &mut scratch.scores);
    let selected = selected_at_k(data, &scratch.scores, k)?;
    scratch.mask.clear();
    scratch.mask.resize(data.len(), false);
    for &p in &selected {
        scratch.mask[p] = true;
    }
    let mask = &scratch.mask;
    let dims = data.schema().num_fairness();
    let per_shard = data.map_shards(|shard| -> Result<GroupCounts> {
        let d = shard.data();
        let mut counts = GroupCounts::new(dims);
        for i in 0..d.len() {
            let object = d.row(i);
            let selected = mask[shard.global_index(i)];
            for dim in 0..dims {
                if object.in_group(dim) {
                    counts.member_total[dim] += 1;
                    if selected {
                        counts.member_selected[dim] += 1;
                    }
                } else {
                    counts.other_total[dim] += 1;
                    if selected {
                        counts.other_selected[dim] += 1;
                    }
                }
            }
            if need_labels {
                let label = object.label().ok_or(FairError::MissingLabels)?;
                if label {
                    continue;
                }
                counts.total_neg += 1;
                if selected {
                    counts.total_fp += 1;
                }
                for dim in 0..dims {
                    if object.in_group(dim) {
                        counts.group_neg[dim] += 1;
                        if selected {
                            counts.group_fp[dim] += 1;
                        }
                    }
                }
            }
        }
        Ok(counts)
    });
    // Ordered combine: the first (lowest-shard) error wins, deterministically.
    let mut total = GroupCounts::new(dims);
    for counts in per_shard {
        total = total.merge(&counts?);
    }
    Ok(total)
}

/// Per-group and overall false-positive rates of the top-`k` selection — the
/// sharded counterpart of [`crate::metrics::group_fpr_at_k`].
///
/// # Errors
/// Returns an error on empty datasets, invalid `k`, or missing labels.
pub fn group_fpr_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<(Vec<f64>, f64)> {
    let counts = selection_counts(data, ranker, bonus, k, true, &mut ShardedEvalScratch::new())?;
    let overall = if counts.total_neg == 0 {
        0.0
    } else {
        counts.total_fp as f64 / counts.total_neg as f64
    };
    let per_group = (0..data.schema().num_fairness())
        .map(|d| {
            if counts.group_neg[d] == 0 {
                0.0
            } else {
                counts.group_fp[d] as f64 / counts.group_neg[d] as f64
            }
        })
        .collect();
    Ok((per_group, overall))
}

/// FPR-difference vector (`FPR_group − FPR_overall`) of the top-`k`
/// selection — the sharded counterpart of
/// [`crate::metrics::fpr_difference_at_k`].
///
/// # Errors
/// Returns an error on empty datasets, invalid `k`, or missing labels.
pub fn fpr_difference_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let (per_group, overall) = group_fpr_at_k(data, ranker, bonus, k)?;
    Ok(per_group.into_iter().map(|f| f - overall).collect())
}

/// Signed, scaled disparate impact of the top-`k` selection — the sharded
/// counterpart of [`crate::metrics::scaled_disparate_impact_at_k`].
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn scaled_disparate_impact_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let counts = selection_counts(
        data,
        ranker,
        bonus,
        k,
        false,
        &mut ShardedEvalScratch::new(),
    )?;
    Ok((0..data.schema().num_fairness())
        .map(|d| {
            let (p1, p0) = if counts.member_total[d] == 0 || counts.other_total[d] == 0 {
                (0.0, 0.0)
            } else {
                (
                    counts.member_selected[d] as f64 / counts.member_total[d] as f64,
                    counts.other_selected[d] as f64 / counts.other_total[d] as f64,
                )
            };
            let di = if p1 <= 0.0 || p0 <= 0.0 {
                if p1 == p0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (p1 / p0).min(p0 / p1)
            };
            let sign = if p1 >= p0 { 1.0 } else { -1.0 };
            sign * (1.0 - di)
        })
        .collect())
}

/// The serial reference for a sharded evaluation: flatten and evaluate with
/// the single-`Dataset` metrics. Used by tests and the parity experiment;
/// exactly the pre-refactor code path.
///
/// # Errors
/// Returns an error on empty datasets or invalid `k`.
pub fn serial_disparity_at_k<R: Ranker + ?Sized>(
    dataset: &crate::dataset::Dataset,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let view = dataset.full_view();
    let mut scratch = EvalScratch::new();
    scratch.ranking.refill_with(None, |scores| {
        crate::ranking::effective_scores_into(&view, ranker, bonus, scores);
    });
    crate::metrics::disparity_at_k(&view, &scratch.ranking, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::{SingleFeatureRanker, WeightedSumRanker};
    use crate::shard::ShardedDataset;

    /// A labelled cohort with binary fairness attributes (exact sums) and
    /// tied scores (exercises the deterministic tie-break).
    fn cohort(n: u64) -> Dataset {
        let schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                let member = i % 3 == 0;
                let other = i % 5 == 0;
                let score = f64::from(u32::try_from((i * 11) % 17).unwrap())
                    - if member { 4.0 } else { 0.0 };
                DataObject::new_unchecked(
                    i,
                    vec![score],
                    vec![f64::from(u8::from(member)), f64::from(u8::from(other))],
                    Some(i % 4 == 0),
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sharded_disparity_matches_serial_bitwise() {
        let flat = cohort(61);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for shard_size in [1, 7, 61, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for k in [0.05, 0.2, 0.5, 1.0] {
                let serial = serial_disparity_at_k(&flat, &ranker, &[2.5, 0.5], k).unwrap();
                let sharded = disparity_at_k(&data, &ranker, &[2.5, 0.5], k).unwrap();
                assert_eq!(bits(&serial), bits(&sharded), "shard {shard_size} k {k}");
            }
        }
    }

    #[test]
    fn sharded_ndcg_matches_serial_bitwise() {
        let flat = cohort(61);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for shard_size in [1, 7, 61, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for bonus in [[0.0, 0.0], [3.0, 1.5]] {
                for k in [0.1, 0.3, 1.0] {
                    let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                        &view, &ranker, &bonus,
                    ));
                    let serial = crate::metrics::ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
                    let sharded = ndcg_at_k(&data, &ranker, &bonus, k).unwrap();
                    assert_eq!(
                        serial.to_bits(),
                        sharded.to_bits(),
                        "shard {shard_size} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_log_discounted_matches_serial_bitwise() {
        let flat = cohort(83);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let cfg = LogDiscountConfig {
            step: 7,
            max_fraction: 0.6,
        };
        for shard_size in [1, 7, 83, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                &view,
                &ranker,
                &[1.0, 0.0],
            ));
            let serial = crate::metrics::log_discounted_disparity(&view, &ranking, &cfg).unwrap();
            let sharded = log_discounted_disparity(&data, &ranker, &[1.0, 0.0], &cfg).unwrap();
            assert_eq!(bits(&serial), bits(&sharded), "shard {shard_size}");
        }
    }

    #[test]
    fn sharded_fpr_and_di_match_serial_bitwise() {
        let flat = cohort(59);
        let view = flat.full_view();
        let ranker = SingleFeatureRanker::new(0);
        for shard_size in [1, 7, 59] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for k in [0.2, 0.5] {
                let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                    &view,
                    &ranker,
                    &[0.0, -1.0],
                ));
                let serial_fpr = crate::metrics::fpr_difference_at_k(&view, &ranking, k).unwrap();
                let sharded_fpr = fpr_difference_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_fpr), bits(&sharded_fpr), "fpr {shard_size}");
                let (serial_groups, serial_overall) =
                    crate::metrics::group_fpr_at_k(&view, &ranking, k).unwrap();
                let (sharded_groups, sharded_overall) =
                    group_fpr_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_groups), bits(&sharded_groups));
                assert_eq!(serial_overall.to_bits(), sharded_overall.to_bits());
                let serial_di =
                    crate::metrics::scaled_disparate_impact_at_k(&view, &ranking, k).unwrap();
                let sharded_di =
                    scaled_disparate_impact_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_di), bits(&sharded_di), "di {shard_size}");
            }
        }
    }

    #[test]
    fn missing_labels_error_propagates_from_shards() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..10_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 2 == 0))],
                    // One unlabelled row in a late shard.
                    if i == 7 { None } else { Some(true) },
                )
            })
            .collect();
        let data = ShardedDataset::from_objects(schema, objects, 3).unwrap();
        let ranker = SingleFeatureRanker::new(0);
        assert!(matches!(
            fpr_difference_at_k(&data, &ranker, &[0.0], 0.5),
            Err(FairError::MissingLabels)
        ));
        // The label-free DI metric still works on the same data.
        assert!(scaled_disparate_impact_at_k(&data, &ranker, &[0.0], 0.5).is_ok());
    }

    #[test]
    fn empty_dataset_errors() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let data = ShardedDataset::with_shard_size(schema, 4).unwrap();
        let ranker = SingleFeatureRanker::new(0);
        assert!(disparity_at_k(&data, &ranker, &[0.0], 0.5).is_err());
        assert!(ndcg_at_k(&data, &ranker, &[0.0], 0.5).is_err());
        assert!(
            log_discounted_disparity(&data, &ranker, &[0.0], &LogDiscountConfig::default())
                .is_err()
        );
        assert!(group_fpr_at_k(&data, &ranker, &[0.0], 0.5).is_err());
    }
}
