//! The Disparity metric (Definition 3).
//!
//! Disparity is "the vector difference between the average selected object and
//! the average unselected object", computed over the fairness attributes:
//! `D = D_k − D_O`, where `D_k` is the fairness centroid of the selected
//! top-k% and `D_O` the fairness centroid of the whole population. Each
//! dimension lies in `[-1, 1]`; `0` is statistical parity.

use crate::dataset::SampleView;
use crate::error::Result;
use crate::ranking::topk::RankedSelection;
use std::fmt;

/// A disparity vector together with the fairness-attribute names it refers to.
///
/// This is the user-facing result type: it prints the per-dimension values and
/// the overall norm exactly as the paper's Table I does.
#[derive(Debug, Clone, PartialEq)]
pub struct DisparityVector {
    names: Vec<String>,
    values: Vec<f64>,
}

impl DisparityVector {
    /// Pair attribute names with disparity values.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn new(names: Vec<String>, values: Vec<f64>) -> Self {
        assert_eq!(names.len(), values.len(), "names/values length mismatch");
        Self { names, values }
    }

    /// Per-dimension disparity values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fairness-attribute names.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Disparity of a named dimension.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// L2 norm — the "Norm" column of the paper's tables.
    #[must_use]
    pub fn norm(&self) -> f64 {
        super::norm(&self.values)
    }
}

impl fmt::Display for DisparityVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.names.iter().zip(&self.values) {
            writeln!(f, "{n:<14} {v:+.3}")?;
        }
        write!(f, "{:<14} {:.3}", "Norm", self.norm())
    }
}

/// Disparity of an explicit selection (given as view positions):
/// `centroid(selected) − centroid(view)`.
///
/// # Errors
/// Returns an error if the view or the selection is empty.
pub fn disparity_of_selection(view: &SampleView<'_>, selected: &[usize]) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    disparity_of_selection_into(view, selected, &mut out)?;
    Ok(out)
}

/// [`disparity_of_selection`] writing into a caller-provided buffer.
///
/// # Errors
/// Returns an error if the view or the selection is empty.
pub fn disparity_of_selection_into(
    view: &SampleView<'_>,
    selected: &[usize],
    out: &mut Vec<f64>,
) -> Result<()> {
    let all = view.fairness_centroid()?;
    view.fairness_centroid_of_into(selected, out)?;
    for (s, a) in out.iter_mut().zip(&all) {
        *s -= a;
    }
    Ok(())
}

/// Disparity of the top-`k` fraction of a ranking over a view.
///
/// # Errors
/// Returns an error for invalid `k` or empty views.
pub fn disparity_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<Vec<f64>> {
    let selected = ranking.selected(k)?;
    disparity_of_selection(view, selected)
}

/// [`disparity_at_k`] writing into a caller-provided buffer — the
/// allocation-light path the DCA inner loop uses.
///
/// # Errors
/// Returns an error for invalid `k` or empty views.
pub fn disparity_at_k_into(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
    out: &mut Vec<f64>,
) -> Result<()> {
    let selected = ranking.selected(k)?;
    disparity_of_selection_into(view, selected, out)
}

/// Convenience: compute a named [`DisparityVector`] for the top-`k` selection.
///
/// # Errors
/// Returns an error for invalid `k` or empty views.
pub fn named_disparity_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<DisparityVector> {
    let values = disparity_at_k(view, ranking, k)?;
    let names = view
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    Ok(DisparityVector::new(names, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, WeightedSumRanker};

    /// 10 objects; 30% are members of group "g". Scores are arranged so the
    /// uncorrected top-2 selection contains no group members.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut objects = Vec::new();
        for i in 0..10_u64 {
            let member = i < 3; // objects 0,1,2 are members
            let score = if member {
                10.0 + i as f64
            } else {
                50.0 + i as f64
            };
            objects.push(DataObject::new_unchecked(
                i,
                vec![score],
                vec![if member { 1.0 } else { 0.0 }],
                None,
            ));
        }
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn paper_example_thirty_vs_twenty_percent() {
        // Population 30% low-income, selection 20% low-income => disparity -0.1.
        let schema = Schema::from_names(&["s"], &["low_income"], &[]).unwrap();
        let mut objects = Vec::new();
        for i in 0..10_u64 {
            objects.push(DataObject::new_unchecked(
                i,
                vec![0.0],
                vec![if i < 3 { 1.0 } else { 0.0 }],
                None,
            ));
        }
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        // Select 5 objects, exactly 1 of them low-income => 20% selected share.
        let selected = vec![0, 3, 4, 5, 6];
        let disp = disparity_of_selection(&view, &selected).unwrap();
        assert!((disp[0] - (0.2 - 0.3)).abs() < 1e-12);
    }

    #[test]
    fn uncorrected_selection_underrepresents_the_group() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[0.0]);
        let ranking = RankedSelection::from_scores(scores);
        let disp = disparity_at_k(&view, &ranking, 0.2).unwrap();
        // Selection has 0% members vs 30% in the population.
        assert!(
            (disp[0] + 0.3).abs() < 1e-12,
            "expected -0.3, got {}",
            disp[0]
        );
    }

    #[test]
    fn bonus_points_move_disparity_toward_zero() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // A 100-point bonus puts members on top.
        let scores = effective_scores(&view, &ranker, &[100.0]);
        let ranking = RankedSelection::from_scores(scores);
        let disp = disparity_at_k(&view, &ranking, 0.2).unwrap();
        // Now the selection is 100% members vs 30% population: +0.7.
        assert!((disp[0] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn full_selection_has_zero_disparity() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[0.0]);
        let ranking = RankedSelection::from_scores(scores);
        let disp = disparity_at_k(&view, &ranking, 1.0).unwrap();
        assert!(disp.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn disparity_values_bounded_in_unit_interval() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for k in [0.1, 0.3, 0.5, 0.9] {
            let scores = effective_scores(&view, &ranker, &[0.0]);
            let ranking = RankedSelection::from_scores(scores);
            let disp = disparity_at_k(&view, &ranking, k).unwrap();
            assert!(disp.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn named_vector_reports_norm_and_lookup() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[0.0]);
        let ranking = RankedSelection::from_scores(scores);
        let dv = named_disparity_at_k(&view, &ranking, 0.2).unwrap();
        assert_eq!(dv.names(), &["g".to_string()]);
        assert!((dv.get("g").unwrap() + 0.3).abs() < 1e-12);
        assert!(dv.get("missing").is_none());
        assert!((dv.norm() - 0.3).abs() < 1e-12);
        let text = dv.to_string();
        assert!(text.contains("Norm"));
        assert!(text.contains("g"));
    }

    #[test]
    fn empty_selection_is_error() {
        let d = dataset();
        let view = d.full_view();
        assert!(disparity_of_selection(&view, &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn named_vector_rejects_mismatch() {
        let _ = DisparityVector::new(vec!["a".into()], vec![0.1, 0.2]);
    }
}
