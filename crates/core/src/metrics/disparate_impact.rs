//! Disparate impact (DI), scaled to the `[-1, 1]` contract DCA requires.
//!
//! Section VI-C5 of the paper uses the DI formulation of Zafar et al.: for a
//! fairness dimension `F`,
//!
//! ```text
//!   DI = min( P(selected | F=0) / P(selected | F=1),
//!             P(selected | F=1) / P(selected | F=0) )
//! ```
//!
//! `DI = 1` is perfectly fair, `DI = 0` maximally unfair. To drive DCA the
//! paper rescales DI into `[-1, 1]`; we use the signed unfairness
//! `sign(P(sel|F=1) − P(sel|F=0)) · (1 − DI)`, which is `0` when fair,
//! negative when the protected group is under-selected (so DCA *increases* its
//! bonus) and positive when it is over-selected — the same sign convention as
//! the Disparity metric.

use crate::dataset::SampleView;
use crate::error::{FairError, Result};
use crate::ranking::topk::RankedSelection;

/// Raw (unsigned) disparate impact per fairness dimension for the top-`k`
/// selection. Values lie in `[0, 1]`, `1` meaning parity of selection rates.
///
/// Group membership for continuous fairness attributes is thresholded at 0.5.
/// Dimensions whose group (or complement) is empty report `1.0` (no
/// comparison possible, treated as fair).
///
/// # Errors
/// Returns an error on an empty view or invalid `k`.
pub fn disparate_impact_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<Vec<f64>> {
    let rates = selection_rates(view, ranking, k)?;
    Ok(rates
        .into_iter()
        .map(|(p1, p0)| {
            if p1 <= 0.0 || p0 <= 0.0 {
                if p1 == p0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (p1 / p0).min(p0 / p1)
            }
        })
        .collect())
}

/// Signed, scaled disparate impact per fairness dimension, in `[-1, 1]`
/// (0 = fair; negative = protected group under-selected).
///
/// # Errors
/// Returns an error on an empty view or invalid `k`.
pub fn scaled_disparate_impact_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<Vec<f64>> {
    let mut mask = Vec::new();
    let mut out = Vec::new();
    scaled_disparate_impact_at_k_into(view, ranking, k, &mut mask, &mut out)?;
    Ok(out)
}

/// [`scaled_disparate_impact_at_k`] writing into caller-provided buffers (the
/// allocation-light path the DCA inner loop uses).
///
/// # Errors
/// Returns an error on an empty view or invalid `k`.
pub fn scaled_disparate_impact_at_k_into(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
    mask: &mut Vec<bool>,
    out: &mut Vec<f64>,
) -> Result<()> {
    let rates = selection_rates_with_mask(view, ranking, k, mask)?;
    out.clear();
    out.extend(rates.into_iter().map(|(p1, p0)| {
        let di = if p1 <= 0.0 || p0 <= 0.0 {
            if p1 == p0 {
                1.0
            } else {
                0.0
            }
        } else {
            (p1 / p0).min(p0 / p1)
        };
        let sign = if p1 >= p0 { 1.0 } else { -1.0 };
        sign * (1.0 - di)
    }));
    Ok(())
}

/// For every fairness dimension, the pair `(P(selected | member),
/// P(selected | non-member))` under the top-`k` selection. Dimensions with an
/// empty group or complement report equal rates (0, 0) so they read as fair.
fn selection_rates(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<Vec<(f64, f64)>> {
    let mut mask = Vec::new();
    selection_rates_with_mask(view, ranking, k, &mut mask)
}

/// [`selection_rates`] using a caller-provided selection-mask buffer.
fn selection_rates_with_mask(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
    mask: &mut Vec<bool>,
) -> Result<Vec<(f64, f64)>> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    ranking.selection_mask_into(k, mask)?;
    let dims = view.schema().num_fairness();
    let mut member_total = vec![0_usize; dims];
    let mut member_selected = vec![0_usize; dims];
    let mut other_total = vec![0_usize; dims];
    let mut other_selected = vec![0_usize; dims];

    for (pos, object) in view.iter().enumerate() {
        let selected = mask[pos];
        for dim in 0..dims {
            if object.in_group(dim) {
                member_total[dim] += 1;
                if selected {
                    member_selected[dim] += 1;
                }
            } else {
                other_total[dim] += 1;
                if selected {
                    other_selected[dim] += 1;
                }
            }
        }
    }

    Ok((0..dims)
        .map(|d| {
            if member_total[d] == 0 || other_total[d] == 0 {
                (0.0, 0.0)
            } else {
                (
                    member_selected[d] as f64 / member_total[d] as f64,
                    other_selected[d] as f64 / other_total[d] as f64,
                )
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, WeightedSumRanker};

    /// 10 objects, 4 group members (ids 0-3) whose scores put them at the
    /// bottom of the ranking.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..10_u64)
            .map(|i| {
                let member = i < 4;
                let score = if member { i as f64 } else { 100.0 + i as f64 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn rank(d: &Dataset, bonus: f64) -> (crate::dataset::SampleView<'_>, RankedSelection) {
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[bonus]);
        (view.clone(), RankedSelection::from_scores(scores))
    }

    #[test]
    fn zero_members_selected_gives_di_zero_and_signed_minus_one() {
        let d = dataset();
        let (view, ranking) = rank(&d, 0.0);
        // Top 50% = 5 objects, all non-members.
        let di = disparate_impact_at_k(&view, &ranking, 0.5).unwrap();
        assert_eq!(di, vec![0.0]);
        let signed = scaled_disparate_impact_at_k(&view, &ranking, 0.5).unwrap();
        assert_eq!(signed, vec![-1.0]);
    }

    #[test]
    fn parity_of_rates_gives_di_one_and_signed_zero() {
        // 4 members, 4 non-members; select 2 of each by hand-crafted scores.
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![10.0], vec![1.0], None),
            DataObject::new_unchecked(1, vec![9.0], vec![1.0], None),
            DataObject::new_unchecked(2, vec![1.0], vec![1.0], None),
            DataObject::new_unchecked(3, vec![0.5], vec![1.0], None),
            DataObject::new_unchecked(4, vec![8.0], vec![0.0], None),
            DataObject::new_unchecked(5, vec![7.0], vec![0.0], None),
            DataObject::new_unchecked(6, vec![1.1], vec![0.0], None),
            DataObject::new_unchecked(7, vec![0.2], vec![0.0], None),
        ];
        let d = Dataset::new(schema, objects).unwrap();
        let (view, ranking) = rank(&d, 0.0);
        let di = disparate_impact_at_k(&view, &ranking, 0.5).unwrap();
        assert!((di[0] - 1.0).abs() < 1e-12);
        let signed = scaled_disparate_impact_at_k(&view, &ranking, 0.5).unwrap();
        assert!(signed[0].abs() < 1e-12);
    }

    #[test]
    fn signed_di_turns_positive_when_group_dominates() {
        let d = dataset();
        let (view, ranking) = rank(&d, 1_000.0);
        // With a huge bonus the 4 members occupy the whole top-40%.
        let signed = scaled_disparate_impact_at_k(&view, &ranking, 0.4).unwrap();
        assert!(signed[0] > 0.9, "got {}", signed[0]);
    }

    #[test]
    fn values_stay_bounded() {
        let d = dataset();
        for bonus in [0.0, 10.0, 200.0, 10_000.0] {
            for k in [0.1, 0.3, 0.5, 1.0] {
                let (view, ranking) = rank(&d, bonus);
                let di = disparate_impact_at_k(&view, &ranking, k).unwrap();
                assert!(di.iter().all(|v| (0.0..=1.0).contains(v)));
                let signed = scaled_disparate_impact_at_k(&view, &ranking, k).unwrap();
                assert!(signed.iter().all(|v| (-1.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn empty_group_reads_as_fair() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..5_u64)
            .map(|i| DataObject::new_unchecked(i, vec![i as f64], vec![0.0], None))
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        let (view, ranking) = rank(&d, 0.0);
        assert_eq!(
            disparate_impact_at_k(&view, &ranking, 0.4).unwrap(),
            vec![1.0]
        );
        assert_eq!(
            scaled_disparate_impact_at_k(&view, &ranking, 0.4).unwrap(),
            vec![0.0]
        );
    }

    #[test]
    fn empty_view_is_error() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let d = Dataset::empty(schema);
        let view = d.full_view();
        let ranking = RankedSelection::from_scores(vec![]);
        assert!(disparate_impact_at_k(&view, &ranking, 0.5).is_err());
    }
}
