//! False-positive-rate (FPR) differences — the equalized-odds style objective
//! of Section VI-C5.
//!
//! "The FPR is defined as the proportion of real negative cases that were
//! misidentified as positive by the algorithm. Disparities in this rate
//! between different groups is one of the original criticisms of the COMPAS
//! algorithm. To minimize this difference we subtract the overall FPR from the
//! per-group FPR."
//!
//! In this crate's conventions, the top-`k` selection is the *positive*
//! prediction (e.g. flagged as high recidivism risk) and the object label is
//! the ground-truth outcome (`true` = the event occurred). A false positive is
//! therefore a selected object whose label is `false`.

use crate::dataset::SampleView;
use crate::error::{FairError, Result};
use crate::ranking::topk::RankedSelection;

/// FPR of each fairness group (membership thresholded at 0.5) and the overall
/// FPR, for the top-`k` selection treated as the positive prediction.
///
/// Groups with no true-negative members report an FPR of 0.
///
/// # Errors
/// Returns an error on empty views, invalid `k`, or missing labels.
pub fn group_fpr_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<(Vec<f64>, f64)> {
    let mut mask = Vec::new();
    group_fpr_at_k_with_mask(view, ranking, k, &mut mask)
}

/// [`group_fpr_at_k`] using a caller-provided selection-mask buffer (the
/// allocation-free path).
///
/// # Errors
/// Returns an error on empty views, invalid `k`, or missing labels.
pub fn group_fpr_at_k_with_mask(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
    mask: &mut Vec<bool>,
) -> Result<(Vec<f64>, f64)> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    ranking.selection_mask_into(k, mask)?;
    let dims = view.schema().num_fairness();
    let mut group_neg = vec![0_usize; dims];
    let mut group_fp = vec![0_usize; dims];
    let mut total_neg = 0_usize;
    let mut total_fp = 0_usize;

    for (pos, object) in view.iter().enumerate() {
        let label = object.label().ok_or(FairError::MissingLabels)?;
        if label {
            continue; // only true negatives contribute to the FPR
        }
        let selected = mask[pos];
        total_neg += 1;
        if selected {
            total_fp += 1;
        }
        for dim in 0..dims {
            if object.in_group(dim) {
                group_neg[dim] += 1;
                if selected {
                    group_fp[dim] += 1;
                }
            }
        }
    }

    let overall = if total_neg == 0 {
        0.0
    } else {
        total_fp as f64 / total_neg as f64
    };
    let per_group = (0..dims)
        .map(|d| {
            if group_neg[d] == 0 {
                0.0
            } else {
                group_fp[d] as f64 / group_neg[d] as f64
            }
        })
        .collect();
    Ok((per_group, overall))
}

/// The DCA-compatible FPR-difference vector: `FPR_group − FPR_overall` per
/// fairness dimension, each value in `[-1, 1]` and 0 when the group's FPR
/// matches the population's.
///
/// A *positive* value means the group is flagged as a false positive more
/// often than average; with a [`crate::bonus::BonusPolarity::NonPositive`]
/// bonus vector, DCA then decreases that group's effective risk score.
///
/// # Errors
/// Returns an error on empty views, invalid `k`, or missing labels.
pub fn fpr_difference_at_k(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
) -> Result<Vec<f64>> {
    let (per_group, overall) = group_fpr_at_k(view, ranking, k)?;
    Ok(per_group.into_iter().map(|f| f - overall).collect())
}

/// [`fpr_difference_at_k`] writing into caller-provided buffers (the
/// allocation-light path the DCA inner loop uses).
///
/// # Errors
/// Returns an error on empty views, invalid `k`, or missing labels.
pub fn fpr_difference_at_k_into(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    k: f64,
    mask: &mut Vec<bool>,
    out: &mut Vec<f64>,
) -> Result<()> {
    let (per_group, overall) = group_fpr_at_k_with_mask(view, ranking, k, mask)?;
    out.clear();
    out.extend(per_group.into_iter().map(|f| f - overall));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, SingleFeatureRanker};

    /// Two groups (a, b), 4 objects each; "risk" scores arranged so that the
    /// top-50% selection contains all of group a and none of group b. Half of
    /// each group are true negatives (label = false).
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["risk"], &["a", "b"], &[]).unwrap();
        let mut objects = Vec::new();
        for i in 0..4_u64 {
            // group a: high risk scores
            objects.push(DataObject::new_unchecked(
                i,
                vec![100.0 + i as f64],
                vec![1.0, 0.0],
                Some(i % 2 == 0),
            ));
        }
        for i in 4..8_u64 {
            // group b: low risk scores
            objects.push(DataObject::new_unchecked(
                i,
                vec![i as f64],
                vec![0.0, 1.0],
                Some(i % 2 == 0),
            ));
        }
        Dataset::new(schema, objects).unwrap()
    }

    fn rank<'a>(
        d: &'a Dataset,
        bonus: &[f64],
    ) -> (crate::dataset::SampleView<'a>, RankedSelection) {
        let view = d.full_view();
        let ranker = SingleFeatureRanker::new(0);
        let scores = effective_scores(&view, &ranker, bonus);
        (view.clone(), RankedSelection::from_scores(scores))
    }

    #[test]
    fn group_fpr_matches_hand_computation() {
        let d = dataset();
        let (view, ranking) = rank(&d, &[0.0, 0.0]);
        let (per_group, overall) = group_fpr_at_k(&view, &ranking, 0.5).unwrap();
        // Group a: 2 true negatives, both selected -> FPR 1.0.
        // Group b: 2 true negatives, none selected -> FPR 0.0.
        // Overall: 4 true negatives, 2 selected -> 0.5.
        assert_eq!(per_group, vec![1.0, 0.0]);
        assert!((overall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fpr_difference_signs_reflect_over_and_under_flagging() {
        let d = dataset();
        let (view, ranking) = rank(&d, &[0.0, 0.0]);
        let diff = fpr_difference_at_k(&view, &ranking, 0.5).unwrap();
        assert!((diff[0] - 0.5).abs() < 1e-12, "group a over-flagged");
        assert!((diff[1] + 0.5).abs() < 1e-12, "group b under-flagged");
        assert!(diff.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn negative_bonus_on_over_flagged_group_reduces_its_fpr() {
        let d = dataset();
        // A non-positive bonus of -200 on group a pushes it out of the flagged set.
        let (view, ranking) = rank(&d, &[-200.0, 0.0]);
        let (per_group, _) = group_fpr_at_k(&view, &ranking, 0.5).unwrap();
        assert_eq!(per_group[0], 0.0);
    }

    #[test]
    fn missing_labels_is_an_error() {
        let schema = Schema::from_names(&["risk"], &["a"], &[]).unwrap();
        let objects = vec![DataObject::new_unchecked(0, vec![1.0], vec![1.0], None)];
        let d = Dataset::new(schema, objects).unwrap();
        let (view, ranking) = rank(&d, &[0.0]);
        assert!(matches!(
            fpr_difference_at_k(&view, &ranking, 1.0),
            Err(FairError::MissingLabels)
        ));
    }

    #[test]
    fn group_with_no_true_negatives_reports_zero() {
        let schema = Schema::from_names(&["risk"], &["a", "b"], &[]).unwrap();
        let objects = vec![
            // group a objects all recidivated (label true) -> no true negatives
            DataObject::new_unchecked(0, vec![10.0], vec![1.0, 0.0], Some(true)),
            DataObject::new_unchecked(1, vec![9.0], vec![1.0, 0.0], Some(true)),
            DataObject::new_unchecked(2, vec![1.0], vec![0.0, 1.0], Some(false)),
            DataObject::new_unchecked(3, vec![0.5], vec![0.0, 1.0], Some(false)),
        ];
        let d = Dataset::new(schema, objects).unwrap();
        let (view, ranking) = rank(&d, &[0.0, 0.0]);
        let (per_group, _) = group_fpr_at_k(&view, &ranking, 0.5).unwrap();
        assert_eq!(per_group[0], 0.0);
    }

    #[test]
    fn all_positive_labels_give_zero_overall_fpr() {
        let schema = Schema::from_names(&["risk"], &["a"], &[]).unwrap();
        let objects = (0..4_u64)
            .map(|i| DataObject::new_unchecked(i, vec![i as f64], vec![1.0], Some(true)))
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        let (view, ranking) = rank(&d, &[0.0]);
        let (per_group, overall) = group_fpr_at_k(&view, &ranking, 0.5).unwrap();
        assert_eq!(overall, 0.0);
        assert_eq!(per_group, vec![0.0]);
    }

    #[test]
    fn empty_view_is_error() {
        let schema = Schema::from_names(&["risk"], &["a"], &[]).unwrap();
        let d = Dataset::empty(schema);
        let view = d.full_view();
        let ranking = RankedSelection::from_scores(vec![]);
        assert!(group_fpr_at_k(&view, &ranking, 0.5).is_err());
    }
}
