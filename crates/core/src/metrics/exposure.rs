//! Exposure and the demographic disparity (DDP) measure of Section VI-C4.
//!
//! Exposure measures how much visibility a group receives over the *whole*
//! ranking rather than in one top-k cut:
//!
//! ```text
//!   Exposure(G | R) = Σ_{i ∈ G} 1 / log2(rank(i) + 1)
//! ```
//!
//! with 1-based ranks (the definition of Gupta et al. used by the paper).
//! The demographic disparity constraint (DDP) is the maximum pairwise
//! difference of *per-capita* exposure between groups; 0 means every group is
//! equally visible per member.

use crate::dataset::SampleView;
use crate::error::{FairError, Result};
use crate::ranking::topk::RankedSelection;

/// Exposure of a group given as a membership mask over view positions.
///
/// # Panics
/// Panics if the mask length differs from the ranking length.
#[must_use]
pub fn exposure_of_group(ranking: &RankedSelection, members: &[bool]) -> f64 {
    assert_eq!(
        members.len(),
        ranking.len(),
        "membership mask length mismatch"
    );
    ranking
        .order()
        .iter()
        .enumerate()
        .filter(|(_, &pos)| members[pos])
        // rank is 1-based; log2(1+1) = 1 for the top item.
        .map(|(rank0, _)| 1.0 / ((rank0 as f64) + 2.0).log2())
        .sum()
}

/// Per-capita (average) exposure of a group, or 0 for an empty group.
#[must_use]
pub fn group_average_exposure(ranking: &RankedSelection, members: &[bool]) -> f64 {
    let size = members.iter().filter(|m| **m).count();
    if size == 0 {
        return 0.0;
    }
    exposure_of_group(ranking, members) / size as f64
}

/// DDP over the groups defined by the *binary* fairness attributes of the
/// view's schema: each binary attribute's member set forms one group, plus one
/// group for objects belonging to none of them. Continuous attributes are
/// skipped, as in the paper ("DDP does not handle non-binary fairness
/// attributes").
///
/// Returns the maximum pairwise difference of per-capita exposure across all
/// non-empty groups (0 when fewer than two groups are non-empty).
///
/// # Errors
/// Returns an error on an empty view.
pub fn ddp_for_binary_attributes(view: &SampleView<'_>, ranking: &RankedSelection) -> Result<f64> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let schema = view.schema();
    let binary_dims: Vec<usize> = schema
        .fairness()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind() == crate::attributes::FairnessKind::Binary)
        .map(|(i, _)| i)
        .collect();

    let n = view.len();
    let mut groups: Vec<Vec<bool>> = Vec::with_capacity(binary_dims.len() + 1);
    for &dim in &binary_dims {
        let mask: Vec<bool> = view.iter().map(|o| o.in_group(dim)).collect();
        groups.push(mask);
    }
    // The "unprotected" group: objects in none of the binary groups.
    let mut none_mask = vec![true; n];
    for mask in &groups {
        for (nm, m) in none_mask.iter_mut().zip(mask) {
            if *m {
                *nm = false;
            }
        }
    }
    groups.push(none_mask);

    let averages: Vec<f64> = groups
        .iter()
        .filter(|mask| mask.iter().any(|m| *m))
        .map(|mask| group_average_exposure(ranking, mask))
        .collect();

    let mut max_diff = 0.0_f64;
    for i in 0..averages.len() {
        for j in (i + 1)..averages.len() {
            max_diff = max_diff.max((averages[i] - averages[j]).abs());
        }
    }
    Ok(max_diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, WeightedSumRanker};

    fn dataset(scores: Vec<f64>, membership: Vec<f64>) -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = scores
            .into_iter()
            .zip(membership)
            .enumerate()
            .map(|(i, (s, m))| DataObject::new_unchecked(i as u64, vec![s], vec![m], None))
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn rank(d: &Dataset, bonus: f64) -> (crate::dataset::SampleView<'_>, RankedSelection) {
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[bonus]);
        (view.clone(), RankedSelection::from_scores(scores))
    }

    #[test]
    fn exposure_matches_hand_computation() {
        // Ranking order by score: positions 1 (score 9), 0 (score 5), 2 (score 1).
        let d = dataset(vec![5.0, 9.0, 1.0], vec![1.0, 0.0, 1.0]);
        let (_, ranking) = rank(&d, 0.0);
        // Members are positions 0 and 2, at ranks 2 and 3.
        let members = vec![true, false, true];
        let expected = 1.0 / 3f64.log2() + 1.0 / 4f64.log2();
        assert!((exposure_of_group(&ranking, &members) - expected).abs() < 1e-12);
    }

    #[test]
    fn top_rank_has_unit_exposure() {
        let d = dataset(vec![1.0, 9.0], vec![0.0, 1.0]);
        let (_, ranking) = rank(&d, 0.0);
        let members = vec![false, true];
        assert!((exposure_of_group(&ranking, &members) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_exposure_of_empty_group_is_zero() {
        let d = dataset(vec![1.0, 2.0], vec![0.0, 0.0]);
        let (_, ranking) = rank(&d, 0.0);
        assert_eq!(group_average_exposure(&ranking, &[false, false]), 0.0);
    }

    #[test]
    fn interleaved_ranking_has_lower_ddp_than_segregated() {
        // Members at ranks 1 and 4 (interleaved) vs members at ranks 3 and 4
        // (segregated at the bottom). The interleaved arrangement must have a
        // strictly smaller exposure gap.
        let interleaved = dataset(vec![8.0, 7.0, 6.0, 5.0], vec![1.0, 0.0, 0.0, 1.0]);
        let segregated = dataset(vec![8.0, 7.0, 6.0, 5.0], vec![0.0, 0.0, 1.0, 1.0]);
        let (vi, ri) = rank(&interleaved, 0.0);
        let (vs, rs) = rank(&segregated, 0.0);
        let ddp_i = ddp_for_binary_attributes(&vi, &ri).unwrap();
        let ddp_s = ddp_for_binary_attributes(&vs, &rs).unwrap();
        assert!(ddp_i < ddp_s, "interleaved {ddp_i} vs segregated {ddp_s}");
    }

    #[test]
    fn ddp_decreases_when_bonus_integrates_the_group() {
        // Members at the bottom without bonus.
        let scores = vec![10.0, 9.0, 8.0, 7.0, 1.0, 0.9, 0.8, 0.7];
        let membership = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let d = dataset(scores, membership);
        let (view, base_ranking) = rank(&d, 0.0);
        let ddp_before = ddp_for_binary_attributes(&view, &base_ranking).unwrap();
        let (view2, boosted) = rank(&d, 8.5);
        let ddp_after = ddp_for_binary_attributes(&view2, &boosted).unwrap();
        assert!(
            ddp_after < ddp_before,
            "bonus should reduce exposure disparity: {ddp_after} vs {ddp_before}"
        );
    }

    #[test]
    fn ddp_ignores_continuous_attributes() {
        let schema = Schema::from_names(&["s"], &["g"], &["eni"]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![2.0], vec![1.0, 0.9], None),
            DataObject::new_unchecked(1, vec![1.0], vec![0.0, 0.1], None),
        ];
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0, 0.0]));
        // Only the binary attribute and the "none" group are compared.
        let ddp = ddp_for_binary_attributes(&view, &ranking).unwrap();
        assert!((ddp - (1.0 - 1.0 / 3f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn empty_view_is_error() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let d = Dataset::empty(schema);
        let view = d.full_view();
        let ranking = RankedSelection::from_scores(vec![]);
        assert!(ddp_for_binary_attributes(&view, &ranking).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn exposure_rejects_wrong_mask_length() {
        let d = dataset(vec![1.0, 2.0], vec![0.0, 1.0]);
        let (_, ranking) = rank(&d, 0.0);
        let _ = exposure_of_group(&ranking, &[true]);
    }
}
