//! Utility measurement via normalized discounted cumulative gain (nDCG).
//!
//! "In fair ranking applications, utility measures how much the disparity
//! compensation approach impacts the original rankings" (Section VI-A2). The
//! relevance weight of an object is its *original* (pre-bonus) score; the
//! ideal DCG is the DCG of the original ranking, so an unchanged ranking
//! scores exactly 1.

use crate::dataset::SampleView;
use crate::error::{FairError, Result};
use crate::ranking::topk::{selection_size, RankedSelection};
use crate::ranking::{base_scores, Ranker};

/// Discounted cumulative gain of a weight sequence: `Σ w_i / log2(i + 1)`
/// with 1-based positions `i`.
#[must_use]
pub fn dcg(weights: &[f64]) -> f64 {
    weights
        .iter()
        .enumerate()
        .map(|(i, w)| w / ((i as f64) + 2.0).log2())
        .sum()
}

/// nDCG@k of a bonus-adjusted ranking relative to the original ranking.
///
/// * `view` — the population being ranked,
/// * `ranker` — the original score-based ranking function (provides the
///   relevance weights),
/// * `adjusted` — the ranking obtained after applying bonus points,
/// * `k` — selection fraction in `(0, 1]`.
///
/// Returns a value in `[0, 1]`; `1.0` means the top-k is unchanged in order.
///
/// # Errors
/// Returns an error on an empty view or an invalid `k`.
pub fn ndcg_at_k<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    adjusted: &RankedSelection,
    k: f64,
) -> Result<f64> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let count = selection_size(view.len(), k)?;
    let base = base_scores(view, ranker);
    // Relevance weights must be non-negative for nDCG to be meaningful; the
    // school rubric and decile scores already are. Shift if necessary.
    let min = base.iter().copied().fold(f64::INFINITY, f64::min);
    let shift = if min < 0.0 { -min } else { 0.0 };

    let original = RankedSelection::from_scores(base.clone());
    let ideal_weights: Vec<f64> = original
        .top(count)
        .iter()
        .map(|&p| base[p] + shift)
        .collect();
    let measured_weights: Vec<f64> = adjusted
        .top(count)
        .iter()
        .map(|&p| base[p] + shift)
        .collect();

    let ideal = dcg(&ideal_weights);
    if ideal == 0.0 {
        // All relevance weights are zero: any ordering is as good as any other.
        return Ok(1.0);
    }
    Ok((dcg(&measured_weights) / ideal).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, WeightedSumRanker};

    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..20_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![(20 - i) as f64],
                    vec![if i >= 15 { 1.0 } else { 0.0 }],
                    None,
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn dcg_matches_hand_computation() {
        // 3/log2(2) + 2/log2(3) + 1/log2(4) = 3 + 1.2618... + 0.5
        let v = dcg(&[3.0, 2.0, 1.0]);
        let expected = 3.0 + 2.0 / 3f64.log2() + 1.0 / 2.0;
        assert!((v - expected).abs() < 1e-9);
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn unchanged_ranking_has_ndcg_one() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[0.0]);
        let ranking = RankedSelection::from_scores(scores);
        let u = ndcg_at_k(&view, &ranker, &ranking, 0.25).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bonus_adjustment_reduces_but_keeps_high_utility() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // Moderate bonus pushes a group member into the top-25%.
        let scores = effective_scores(&view, &ranker, &[12.0]);
        let ranking = RankedSelection::from_scores(scores);
        let u = ndcg_at_k(&view, &ranker, &ranking, 0.25).unwrap();
        assert!(u < 1.0, "ranking changed so utility must drop: {u}");
        assert!(u > 0.5, "utility should remain substantial: {u}");
    }

    #[test]
    fn utility_is_monotone_in_bonus_distortion() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let utility = |bonus: f64| {
            let scores = effective_scores(&view, &ranker, &[bonus]);
            let ranking = RankedSelection::from_scores(scores);
            ndcg_at_k(&view, &ranker, &ranking, 0.25).unwrap()
        };
        let small = utility(5.0);
        let large = utility(50.0);
        assert!(
            large <= small,
            "a larger distortion cannot increase nDCG: {large} vs {small}"
        );
    }

    #[test]
    fn ndcg_bounded_in_unit_interval() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for bonus in [0.0, 1.0, 10.0, 1000.0] {
            for k in [0.05, 0.25, 0.5, 1.0] {
                let scores = effective_scores(&view, &ranker, &[bonus]);
                let ranking = RankedSelection::from_scores(scores);
                let u = ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
                assert!((0.0..=1.0).contains(&u), "bonus {bonus}, k {k}: {u}");
            }
        }
    }

    #[test]
    fn negative_scores_are_shifted_not_rejected() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..4_u64)
            .map(|i| DataObject::new_unchecked(i, vec![-(i as f64)], vec![0.0], None))
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0]));
        let u = ndcg_at_k(&view, &ranker, &ranking, 0.5).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_view_is_error() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let d = Dataset::empty(schema);
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(vec![]);
        assert!(ndcg_at_k(&view, &ranker, &ranking, 0.5).is_err());
    }

    #[test]
    fn invalid_k_is_error() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0]));
        assert!(ndcg_at_k(&view, &ranker, &ranking, 0.0).is_err());
    }
}
