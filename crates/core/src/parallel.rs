//! A dependency-free parallel map built on [`std::thread::scope`].
//!
//! The vendored dependency set is fixed (no rayon in the build environment),
//! but the experiment layer has several embarrassingly parallel sweeps — the
//! per-`k` full-DCA/refinement sweep behind Figures 4a/8, and the
//! `all_experiments` harness that regenerates every table. [`parallel_map`]
//! covers exactly that shape: run one closure per item on a small scoped
//! worker pool and return the results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Apply `f` to every item of `items` on up to
/// [`std::thread::available_parallelism`] scoped worker threads, returning
/// the results in input order.
///
/// Work is claimed dynamically (one atomic fetch-add per item), so uneven
/// per-item costs — e.g. DCA runs whose sample size grows with `1/k` — still
/// balance. With zero or one item, or on a single-core machine, `f` runs on
/// the calling thread. `f` must be [`Sync`] because multiple workers share
/// it; per-item mutable state (scratch buffers, RNGs) belongs inside `f`.
///
/// # Panics
/// Propagates the panic of any worker once all threads have been joined.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    // Inline fast path: zero or one item never needs a thread, and with one
    // available worker spawning would only add scope overhead. The worker
    // count is additionally capped at the item count so tiny inputs (e.g. a
    // two-shard dataset on a 16-core machine) never spawn idle threads.
    let workers = worker_count(n);
    // One relaxed increment per sweep (not per item): sweeps are shard-or
    // coarser grained, so this is invisible next to the spawned work. The
    // handle is resolved once per process, keeping the registry lock off the
    // sweep path entirely.
    static SWEEPS: OnceLock<std::sync::Arc<crate::obs::Counter>> = OnceLock::new();
    SWEEPS
        .get_or_init(|| crate::obs::counter("fair_parallel_sweeps_total", &[]))
        .inc();
    if n <= 1 || workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Carry the caller's per-job profile handle (if any) into the pool: a
    // shard paged in by a worker thread is still this job's page-in time.
    // The inline path above runs on the calling thread, where the handle is
    // already installed.
    let profile = crate::obs::profile::current();
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for _ in 0..workers {
            let profile = profile.clone();
            scope.spawn(move || {
                let _profile_guard = profile.map(crate::obs::profile::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// The worker-pool ceiling every [`parallel_map`] call (and anything else
/// sizing a pool off this crate, e.g. the `fair-serve` request workers)
/// respects: the `FAIR_THREADS` environment variable when set to a positive
/// integer, [`std::thread::available_parallelism`] otherwise. Service
/// deployments use the override to pin CPU usage — e.g. `FAIR_THREADS=2` on
/// a box shared with other tenants.
#[must_use]
pub fn max_workers() -> usize {
    thread_override(std::env::var("FAIR_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Parse a `FAIR_THREADS` value: a positive integer caps the pool; anything
/// else (unset, empty, `0`, garbage) falls back to the hardware count.
fn thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
}

/// Number of scoped workers [`parallel_map`] spawns for `items` work items:
/// [`max_workers`] (the `FAIR_THREADS`-overridable machine parallelism),
/// capped at the item count (an item can occupy at most one worker, so extra
/// threads would only idle).
fn worker_count(items: usize) -> usize {
    max_workers().min(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, |&i| i * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let counter = AtomicUsize::new(0);
        let out = parallel_map(&items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn single_item_runs_inline_on_the_calling_thread() {
        // An inline run executes `f` on the caller's thread; a spawned worker
        // would observe a different thread id.
        let caller = std::thread::current().id();
        let ids = parallel_map(&[()], |()| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
        let empty: Vec<()> = Vec::new();
        assert!(parallel_map(&empty, |()| std::thread::current().id()).is_empty());
    }

    #[test]
    fn worker_count_is_capped_at_the_item_count() {
        let ceiling = max_workers();
        assert_eq!(worker_count(0), 0);
        assert_eq!(worker_count(1), 1);
        assert_eq!(
            worker_count(2),
            ceiling.min(2),
            "never more workers than items"
        );
        assert_eq!(
            worker_count(1_000_000),
            ceiling,
            "never more workers than the ceiling"
        );
    }

    #[test]
    fn fair_threads_override_parses_strictly() {
        assert_eq!(thread_override(None), None);
        assert_eq!(thread_override(Some("")), None);
        assert_eq!(thread_override(Some("0")), None, "zero falls back");
        assert_eq!(thread_override(Some("not-a-number")), None);
        assert_eq!(thread_override(Some("-3")), None);
        assert_eq!(thread_override(Some("1")), Some(1));
        assert_eq!(thread_override(Some(" 6 ")), Some(6), "whitespace trimmed");
    }

    #[test]
    fn max_workers_respects_the_environment() {
        // max_workers reads FAIR_THREADS; with the variable unset it must be
        // the hardware parallelism, with it set (CI pins it in one matrix
        // pass) it must be exactly the override. Read-only, so this cannot
        // race with other tests using the pool.
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        match thread_override(std::env::var("FAIR_THREADS").ok().as_deref()) {
            None => assert_eq!(max_workers(), hardware),
            Some(v) => assert_eq!(max_workers(), v),
        }
        assert!(max_workers() > 0);
    }

    #[test]
    fn fair_threads_pins_the_pool_in_a_child_process() {
        // Spawn this test binary once more with FAIR_THREADS=1, filtered to
        // the helper test below that prints the resolved worker ceiling — an
        // end-to-end check of the override without racing the parent
        // process's environment.
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(exe)
            .args([
                "parallel::tests::print_max_workers_for_child",
                "--exact",
                "--nocapture",
            ])
            .env("FAIR_THREADS", "1")
            .output()
            .expect("spawn child test process");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("max_workers=1"),
            "child with FAIR_THREADS=1 must report a pool of 1, got:\n{stdout}"
        );
    }

    #[test]
    fn print_max_workers_for_child() {
        // Helper for `fair_threads_pins_the_pool_in_a_child_process`: prints
        // the resolved ceiling so the parent can assert on it. Harmless when
        // run directly (it just prints the current value).
        println!("max_workers={}", max_workers());
    }

    #[test]
    fn installed_profile_propagates_into_pool_workers() {
        use crate::obs::profile::{self, Phase};
        let p = crate::obs::JobProfile::new();
        let _g = profile::install(p.clone());
        let items: Vec<usize> = (0..64).collect();
        let _ = parallel_map(&items, |&i| {
            let _s = profile::scope(Phase::Decode);
            std::hint::black_box(i)
        });
        assert_eq!(
            p.stats()[Phase::Decode as usize].count,
            64,
            "every worker-side scope lands in the caller's profile"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(&items, |&i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
