//! A dependency-free parallel map built on [`std::thread::scope`].
//!
//! The vendored dependency set is fixed (no rayon in the build environment),
//! but the experiment layer has several embarrassingly parallel sweeps — the
//! per-`k` full-DCA/refinement sweep behind Figures 4a/8, and the
//! `all_experiments` harness that regenerates every table. [`parallel_map`]
//! covers exactly that shape: run one closure per item on a small scoped
//! worker pool and return the results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item of `items` on up to
/// [`std::thread::available_parallelism`] scoped worker threads, returning
/// the results in input order.
///
/// Work is claimed dynamically (one atomic fetch-add per item), so uneven
/// per-item costs — e.g. DCA runs whose sample size grows with `1/k` — still
/// balance. With zero or one item, or on a single-core machine, `f` runs on
/// the calling thread. `f` must be [`Sync`] because multiple workers share
/// it; per-item mutable state (scratch buffers, RNGs) belongs inside `f`.
///
/// # Panics
/// Propagates the panic of any worker once all threads have been joined.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    // Inline fast path: zero or one item never needs a thread, and with one
    // available worker spawning would only add scope overhead. The worker
    // count is additionally capped at the item count so tiny inputs (e.g. a
    // two-shard dataset on a 16-core machine) never spawn idle threads.
    let workers = worker_count(n);
    if n <= 1 || workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// Number of scoped workers [`parallel_map`] spawns for `items` work items:
/// the machine's available parallelism, capped at the item count (an item
/// can occupy at most one worker, so extra threads would only idle).
fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, |&i| i * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let counter = AtomicUsize::new(0);
        let out = parallel_map(&items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn single_item_runs_inline_on_the_calling_thread() {
        // An inline run executes `f` on the caller's thread; a spawned worker
        // would observe a different thread id.
        let caller = std::thread::current().id();
        let ids = parallel_map(&[()], |()| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
        let empty: Vec<()> = Vec::new();
        assert!(parallel_map(&empty, |()| std::thread::current().id()).is_empty());
    }

    #[test]
    fn worker_count_is_capped_at_the_item_count() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(worker_count(0), 0);
        assert_eq!(worker_count(1), 1);
        assert_eq!(
            worker_count(2),
            cores.min(2),
            "never more workers than items"
        );
        assert_eq!(
            worker_count(1_000_000),
            cores,
            "never more workers than cores"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(&items, |&i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
