//! Error types for the `fair-core` crate.

use std::fmt;

/// Errors produced by dataset construction, ranking, and DCA configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FairError {
    /// A schema lookup failed (unknown feature or fairness-attribute name).
    UnknownAttribute {
        /// The name that was looked up.
        name: String,
    },
    /// A vector's dimensionality does not match the schema it is used with.
    DimensionMismatch {
        /// What the vector describes (e.g. "bonus vector", "feature weights").
        what: &'static str,
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        actual: usize,
    },
    /// An attribute value is outside its declared domain (e.g. a binary
    /// fairness attribute that is neither 0 nor 1, or a non-finite value).
    InvalidValue {
        /// Which attribute.
        attribute: String,
        /// The offending value.
        value: f64,
        /// Explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A selection fraction `k` is outside `(0, 1]`.
    InvalidSelectionFraction {
        /// The offending value.
        k: f64,
    },
    /// The dataset (or sample) is empty where a non-empty one is required.
    EmptyDataset,
    /// A configuration parameter is invalid (non-positive sample size, empty
    /// learning-rate ladder, zero iterations, …).
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// An operation requiring ground-truth outcome labels (e.g. the
    /// false-positive-rate objective) was applied to a dataset without labels.
    MissingLabels,
    /// A long-running operation (a DCA descent) was cooperatively cancelled
    /// through its [`crate::dca::RunControl`] before it finished.
    Cancelled,
}

impl fmt::Display for FairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Self::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what} has dimension {actual}, expected {expected}")
            }
            Self::InvalidValue {
                attribute,
                value,
                reason,
            } => {
                write!(
                    f,
                    "invalid value {value} for attribute `{attribute}`: {reason}"
                )
            }
            Self::InvalidSelectionFraction { k } => {
                write!(f, "selection fraction {k} must lie in (0, 1]")
            }
            Self::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::MissingLabels => {
                write!(
                    f,
                    "operation requires ground-truth outcome labels on every object"
                )
            }
            Self::Cancelled => write!(f, "operation was cancelled before completion"),
        }
    }
}

impl std::error::Error for FairError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FairError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FairError::UnknownAttribute { name: "ell".into() };
        assert!(e.to_string().contains("ell"));
        let e = FairError::DimensionMismatch {
            what: "bonus vector",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("bonus vector"));
        assert!(e.to_string().contains('4'));
        let e = FairError::InvalidSelectionFraction { k: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = FairError::InvalidConfig {
            reason: "sample size must be positive".into(),
        };
        assert!(e.to_string().contains("sample size"));
        assert!(FairError::MissingLabels.to_string().contains("labels"));
        assert!(FairError::Cancelled.to_string().contains("cancelled"));
        assert!(FairError::EmptyDataset.to_string().contains("non-empty"));
        let e = FairError::InvalidValue {
            attribute: "low_income".into(),
            value: 2.0,
            reason: "binary attributes must be 0 or 1",
        };
        assert!(e.to_string().contains("low_income"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&FairError::EmptyDataset);
    }
}
