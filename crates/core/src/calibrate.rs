//! Calibration of the intervention strength (Section VI-A2).
//!
//! "DCA can easily be calibrated for different desired fairness thresholds or
//! utility values. Bonus points may be adjusted by a weight multiplicative
//! factor to reduce the importance of the bonus points and increase the
//! utility (as measured by nDCG). The correct proportion of bonus points to
//! apply can be selected through a binary search."
//!
//! [`calibrate_proportion`] implements exactly that binary search over the
//! scaling proportion of a recommended bonus vector, against either a minimum
//! acceptable utility or a maximum acceptable disparity norm.

use crate::bonus::BonusVector;
use crate::dataset::Dataset;
use crate::error::{FairError, Result};
use crate::metrics::{disparity_at_k, ndcg_at_k, norm};
use crate::ranking::topk::RankedSelection;
use crate::ranking::{effective_scores, Ranker};

/// What the calibration should achieve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationTarget {
    /// Apply as much of the bonus as possible while keeping nDCG@k at or
    /// above this value (utility floor).
    MinUtility(f64),
    /// Apply as little of the bonus as necessary to bring the disparity norm
    /// at or below this value (fairness ceiling).
    MaxDisparityNorm(f64),
}

/// Result of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    /// The selected proportion in `[0, 1]`.
    pub proportion: f64,
    /// The scaled (and granularity-rounded) bonus vector at that proportion.
    pub bonus: BonusVector,
    /// Disparity norm achieved at the selected proportion.
    pub disparity_norm: f64,
    /// nDCG@k achieved at the selected proportion.
    pub ndcg: f64,
    /// Whether the target was actually met (false means the closest feasible
    /// endpoint was returned: proportion 1.0 for an unreachable fairness
    /// ceiling, 0.0 for an unreachable utility floor).
    pub target_met: bool,
}

/// Evaluate a candidate proportion: returns `(disparity_norm, ndcg, bonus)`.
fn evaluate<R: Ranker + ?Sized>(
    dataset: &Dataset,
    ranker: &R,
    full_bonus: &BonusVector,
    proportion: f64,
    k: f64,
    granularity: Option<f64>,
) -> Result<(f64, f64, BonusVector)> {
    let scaled = match granularity {
        Some(g) => full_bonus.scaled(proportion)?.rounded_to(g)?,
        None => full_bonus.scaled(proportion)?,
    };
    let view = dataset.full_view();
    let ranking = RankedSelection::from_scores(effective_scores(&view, ranker, scaled.values()));
    let disparity = disparity_at_k(&view, &ranking, k)?;
    let utility = ndcg_at_k(&view, ranker, &ranking, k)?;
    Ok((norm(&disparity), utility, scaled))
}

/// Binary-search the proportion of `full_bonus` to apply so that `target` is
/// met at selection fraction `k`.
///
/// `granularity` re-rounds the scaled vector (pass the same granularity DCA
/// used, or `None` for a continuous search). `iterations` bounds the binary
/// search (12 gives a resolution of ~0.0002).
///
/// # Errors
/// Returns an error for invalid `k`, empty datasets, mismatched bonus
/// dimensionality, or nonsensical targets (negative utility floor, negative
/// disparity ceiling).
pub fn calibrate_proportion<R: Ranker + ?Sized>(
    dataset: &Dataset,
    ranker: &R,
    full_bonus: &BonusVector,
    k: f64,
    target: CalibrationTarget,
    granularity: Option<f64>,
    iterations: usize,
) -> Result<CalibrationResult> {
    if dataset.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if full_bonus.dims() != dataset.schema().num_fairness() {
        return Err(FairError::DimensionMismatch {
            what: "bonus vector",
            expected: dataset.schema().num_fairness(),
            actual: full_bonus.dims(),
        });
    }
    match target {
        CalibrationTarget::MinUtility(u) if !(0.0..=1.0).contains(&u) => {
            return Err(FairError::InvalidConfig {
                reason: format!("utility floor must lie in [0, 1], got {u}"),
            });
        }
        CalibrationTarget::MaxDisparityNorm(d) if d < 0.0 || !d.is_finite() => {
            return Err(FairError::InvalidConfig {
                reason: format!("disparity ceiling must be non-negative, got {d}"),
            });
        }
        _ => {}
    }
    let iterations = iterations.max(1);

    // Feasibility of the two endpoints decides the search direction and
    // whether the target is reachable at all.
    let feasible = |disparity_norm: f64, ndcg: f64| -> bool {
        match target {
            CalibrationTarget::MinUtility(floor) => ndcg >= floor,
            CalibrationTarget::MaxDisparityNorm(ceiling) => disparity_norm <= ceiling,
        }
    };

    let (zero_norm, zero_ndcg, zero_bonus) =
        evaluate(dataset, ranker, full_bonus, 0.0, k, granularity)?;
    let (full_norm, full_ndcg, full_scaled) =
        evaluate(dataset, ranker, full_bonus, 1.0, k, granularity)?;

    match target {
        CalibrationTarget::MinUtility(_) => {
            // Utility is maximal at proportion 0. If even that fails the floor
            // (only possible for floor > 1 - epsilon), report infeasible.
            if !feasible(zero_norm, zero_ndcg) {
                return Ok(CalibrationResult {
                    proportion: 0.0,
                    bonus: zero_bonus,
                    disparity_norm: zero_norm,
                    ndcg: zero_ndcg,
                    target_met: false,
                });
            }
            // If the full intervention already meets the floor, use it.
            if feasible(full_norm, full_ndcg) {
                return Ok(CalibrationResult {
                    proportion: 1.0,
                    bonus: full_scaled,
                    disparity_norm: full_norm,
                    ndcg: full_ndcg,
                    target_met: true,
                });
            }
            // Largest feasible proportion: invariant lo feasible, hi infeasible.
            let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
            for _ in 0..iterations {
                let mid = (lo + hi) / 2.0;
                let (n, u, _) = evaluate(dataset, ranker, full_bonus, mid, k, granularity)?;
                if feasible(n, u) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let (n, u, b) = evaluate(dataset, ranker, full_bonus, lo, k, granularity)?;
            Ok(CalibrationResult {
                proportion: lo,
                bonus: b,
                disparity_norm: n,
                ndcg: u,
                target_met: true,
            })
        }
        CalibrationTarget::MaxDisparityNorm(_) => {
            // Disparity is (weakly) minimal at proportion 1. If even the full
            // intervention misses the ceiling, report the endpoint.
            if !feasible(full_norm, full_ndcg) {
                return Ok(CalibrationResult {
                    proportion: 1.0,
                    bonus: full_scaled,
                    disparity_norm: full_norm,
                    ndcg: full_ndcg,
                    target_met: false,
                });
            }
            if feasible(zero_norm, zero_ndcg) {
                return Ok(CalibrationResult {
                    proportion: 0.0,
                    bonus: zero_bonus,
                    disparity_norm: zero_norm,
                    ndcg: zero_ndcg,
                    target_met: true,
                });
            }
            // Smallest feasible proportion: invariant lo infeasible, hi feasible.
            let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
            for _ in 0..iterations {
                let mid = (lo + hi) / 2.0;
                let (n, u, _) = evaluate(dataset, ranker, full_bonus, mid, k, granularity)?;
                if feasible(n, u) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let (n, u, b) = evaluate(dataset, ranker, full_bonus, hi, k, granularity)?;
            Ok(CalibrationResult {
                proportion: hi,
                bonus: b,
                disparity_norm: n,
                ndcg: u,
                target_met: true,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::bonus::BonusPolarity;
    use crate::object::DataObject;
    use crate::ranking::WeightedSumRanker;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn biased_dataset(n: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let objects = (0..n)
            .map(|i| {
                let member = rng.gen::<f64>() < 0.4;
                let score = rng.gen::<f64>() * 100.0 - if member { 20.0 } else { 0.0 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn full_bonus(dataset: &Dataset) -> BonusVector {
        BonusVector::new(
            dataset.schema().clone(),
            vec![20.0],
            BonusPolarity::NonNegative,
        )
        .unwrap()
    }

    #[test]
    fn utility_floor_yields_the_largest_acceptable_proportion() {
        let dataset = biased_dataset(4_000);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = full_bonus(&dataset);
        // Pick a floor between the full-bonus utility and 1.0 so the search
        // has to stop somewhere in the middle.
        let (_, full_ndcg, _) = evaluate(&dataset, &ranker, &bonus, 1.0, 0.1, None).unwrap();
        assert!(full_ndcg < 1.0);
        let floor = (full_ndcg + 1.0) / 2.0;
        let result = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(floor),
            None,
            20,
        )
        .unwrap();
        assert!(result.target_met);
        assert!(
            result.ndcg >= floor - 1e-9,
            "{} vs floor {floor}",
            result.ndcg
        );
        assert!(result.proportion > 0.0 && result.proportion < 1.0);
        // Nudging the proportion up should break the floor (within the search
        // resolution) — i.e. we really found the frontier.
        let (_, u_above, _) = evaluate(
            &dataset,
            &ranker,
            &bonus,
            (result.proportion + 0.05).min(1.0),
            0.1,
            None,
        )
        .unwrap();
        assert!(u_above <= result.ndcg + 1e-9);
    }

    #[test]
    fn fairness_ceiling_yields_the_smallest_sufficient_proportion() {
        let dataset = biased_dataset(4_000);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = full_bonus(&dataset);
        let (zero_norm, _, _) = evaluate(&dataset, &ranker, &bonus, 0.0, 0.1, None).unwrap();
        let (full_norm, _, _) = evaluate(&dataset, &ranker, &bonus, 1.0, 0.1, None).unwrap();
        assert!(full_norm < zero_norm);
        let ceiling = (zero_norm + full_norm) / 2.0;
        let result = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MaxDisparityNorm(ceiling),
            None,
            20,
        )
        .unwrap();
        assert!(result.target_met);
        assert!(result.disparity_norm <= ceiling + 1e-9);
        assert!(result.proportion > 0.0 && result.proportion < 1.0);
    }

    #[test]
    fn trivially_satisfied_targets_return_endpoints() {
        let dataset = biased_dataset(2_000);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = full_bonus(&dataset);
        // A utility floor of 0 is met by the full intervention.
        let r = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(0.0),
            None,
            10,
        )
        .unwrap();
        assert_eq!(r.proportion, 1.0);
        assert!(r.target_met);
        // A huge disparity ceiling is met without any intervention.
        let r = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MaxDisparityNorm(1.0),
            None,
            10,
        )
        .unwrap();
        assert_eq!(r.proportion, 0.0);
        assert!(r.target_met);
    }

    #[test]
    fn unreachable_fairness_ceiling_reports_infeasibility() {
        let dataset = biased_dataset(2_000);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // A tiny bonus cannot repair the gap.
        let weak = BonusVector::new(
            dataset.schema().clone(),
            vec![0.5],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let r = calibrate_proportion(
            &dataset,
            &ranker,
            &weak,
            0.1,
            CalibrationTarget::MaxDisparityNorm(0.0001),
            None,
            10,
        )
        .unwrap();
        assert!(!r.target_met);
        assert_eq!(r.proportion, 1.0);
    }

    #[test]
    fn granularity_rounding_is_applied_to_the_result() {
        let dataset = biased_dataset(2_000);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = full_bonus(&dataset);
        let r = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(0.97),
            Some(0.5),
            15,
        )
        .unwrap();
        for v in r.bonus.values() {
            assert!(((v / 0.5) - (v / 0.5).round()).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let dataset = biased_dataset(100);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = full_bonus(&dataset);
        assert!(calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(1.5),
            None,
            10
        )
        .is_err());
        assert!(calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MaxDisparityNorm(-0.1),
            None,
            10
        )
        .is_err());
        let other_schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let wrong = BonusVector::zeros(other_schema);
        assert!(calibrate_proportion(
            &dataset,
            &ranker,
            &wrong,
            0.1,
            CalibrationTarget::MinUtility(0.9),
            None,
            10
        )
        .is_err());
        let empty = Dataset::empty(dataset.schema().clone());
        assert!(calibrate_proportion(
            &empty,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(0.9),
            None,
            10
        )
        .is_err());
    }
}
