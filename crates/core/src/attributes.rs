//! Attribute schemas: ranking features and fairness (protected) attributes.
//!
//! Following Definition 1 of the paper, every object carries a set of
//! *attributes* used by the score-based ranking function, plus a distinguished
//! subset of *fairness attributes* ("protected attributes") over which
//! disparity is measured and bonus points are granted. Fairness attributes may
//! be binary ({0,1} membership, e.g. *Low-Income*, *ELL*) or continuous in
//! `[0,1]` (e.g. the *Economic Need Index* of the student's school).

use crate::error::{FairError, Result};
use std::fmt;
use std::sync::Arc;

/// The domain of a fairness attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessKind {
    /// Membership indicator: the attribute value must be exactly 0.0 or 1.0.
    /// A bonus is *added* to the score of members (value 1).
    Binary,
    /// Continuous degree of disadvantage, normalized to `[0, 1]`. The bonus is
    /// *multiplied* by the attribute value before being added to the score.
    Continuous,
}

impl fmt::Display for FairnessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Binary => write!(f, "binary"),
            Self::Continuous => write!(f, "continuous"),
        }
    }
}

/// Description of one fairness (protected) attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessAttribute {
    name: String,
    kind: FairnessKind,
}

impl FairnessAttribute {
    /// A binary fairness attribute (e.g. `low_income`).
    #[must_use]
    pub fn binary(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: FairnessKind::Binary,
        }
    }

    /// A continuous fairness attribute normalized to `[0,1]` (e.g. `eni`).
    #[must_use]
    pub fn continuous(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: FairnessKind::Continuous,
        }
    }

    /// The attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute kind.
    #[must_use]
    pub fn kind(&self) -> FairnessKind {
        self.kind
    }

    /// Validate a raw value against this attribute's domain.
    pub fn validate(&self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(FairError::InvalidValue {
                attribute: self.name.clone(),
                value,
                reason: "value must be finite",
            });
        }
        match self.kind {
            FairnessKind::Binary if value != 0.0 && value != 1.0 => Err(FairError::InvalidValue {
                attribute: self.name.clone(),
                value,
                reason: "binary attributes must be 0 or 1",
            }),
            FairnessKind::Continuous if !(0.0..=1.0).contains(&value) => {
                Err(FairError::InvalidValue {
                    attribute: self.name.clone(),
                    value,
                    reason: "continuous attributes must lie in [0, 1]",
                })
            }
            _ => Ok(()),
        }
    }
}

/// Immutable schema shared by every object of a dataset: the ordered list of
/// ranking-feature names and the ordered list of fairness attributes.
///
/// Schemas are cheap to clone (`Arc` internally via [`SchemaRef`]) and define
/// the dimensionality of feature vectors, fairness vectors, bonus vectors and
/// disparity vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    features: Vec<String>,
    fairness: Vec<FairnessAttribute>,
}

/// Shared handle to a [`Schema`].
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from feature names and fairness attributes.
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if either list contains duplicate
    /// names or if the fairness list is empty (a fairness-free dataset has no
    /// disparity to compensate).
    pub fn new(features: Vec<String>, fairness: Vec<FairnessAttribute>) -> Result<SchemaRef> {
        if fairness.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "schema requires at least one fairness attribute".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for name in features
            .iter()
            .map(String::as_str)
            .chain(fairness.iter().map(|a| a.name()))
        {
            if !seen.insert(name.to_string()) {
                return Err(FairError::InvalidConfig {
                    reason: format!("duplicate attribute name `{name}`"),
                });
            }
        }
        Ok(Arc::new(Self { features, fairness }))
    }

    /// Convenience constructor from string slices.
    pub fn from_names(
        features: &[&str],
        binary_fairness: &[&str],
        continuous_fairness: &[&str],
    ) -> Result<SchemaRef> {
        let features = features.iter().map(|s| (*s).to_string()).collect();
        let fairness = binary_fairness
            .iter()
            .map(|s| FairnessAttribute::binary(*s))
            .chain(
                continuous_fairness
                    .iter()
                    .map(|s| FairnessAttribute::continuous(*s)),
            )
            .collect();
        Self::new(features, fairness)
    }

    /// Ordered ranking-feature names.
    #[must_use]
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// Ordered fairness attributes.
    #[must_use]
    pub fn fairness(&self) -> &[FairnessAttribute] {
        &self.fairness
    }

    /// Number of ranking features.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Number of fairness attributes (= dimensionality of bonus and disparity
    /// vectors).
    #[must_use]
    pub fn num_fairness(&self) -> usize {
        self.fairness.len()
    }

    /// Index of a ranking feature by name.
    pub fn feature_index(&self, name: &str) -> Result<usize> {
        self.features
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| FairError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Index of a fairness attribute by name.
    pub fn fairness_index(&self, name: &str) -> Result<usize> {
        self.fairness
            .iter()
            .position(|f| f.name() == name)
            .ok_or_else(|| FairError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Names of the fairness attributes, in order.
    #[must_use]
    pub fn fairness_names(&self) -> Vec<&str> {
        self.fairness.iter().map(FairnessAttribute::name).collect()
    }

    /// Validate a fairness vector against every attribute's domain.
    pub fn validate_fairness(&self, values: &[f64]) -> Result<()> {
        if values.len() != self.fairness.len() {
            return Err(FairError::DimensionMismatch {
                what: "fairness vector",
                expected: self.fairness.len(),
                actual: values.len(),
            });
        }
        for (attr, &v) in self.fairness.iter().zip(values) {
            attr.validate(v)?;
        }
        Ok(())
    }

    /// Validate a feature vector's dimensionality and finiteness.
    pub fn validate_features(&self, values: &[f64]) -> Result<()> {
        if values.len() != self.features.len() {
            return Err(FairError::DimensionMismatch {
                what: "feature vector",
                expected: self.features.len(),
                actual: values.len(),
            });
        }
        for (name, &v) in self.features.iter().zip(values) {
            if !v.is_finite() {
                return Err(FairError::InvalidValue {
                    attribute: name.clone(),
                    value: v,
                    reason: "value must be finite",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school_schema() -> SchemaRef {
        Schema::from_names(
            &["gpa", "test_scores"],
            &["low_income", "ell", "special_ed"],
            &["eni"],
        )
        .unwrap()
    }

    #[test]
    fn schema_counts_and_lookups() {
        let s = school_schema();
        assert_eq!(s.num_features(), 2);
        assert_eq!(s.num_fairness(), 4);
        assert_eq!(s.feature_index("gpa").unwrap(), 0);
        assert_eq!(s.fairness_index("eni").unwrap(), 3);
        assert_eq!(
            s.fairness_names(),
            vec!["low_income", "ell", "special_ed", "eni"]
        );
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let s = school_schema();
        assert!(matches!(
            s.feature_index("nope"),
            Err(FairError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.fairness_index("nope"),
            Err(FairError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_names(&["gpa", "gpa"], &["li"], &[]);
        assert!(matches!(err, Err(FairError::InvalidConfig { .. })));
        let err = Schema::from_names(&["gpa"], &["gpa"], &[]);
        assert!(matches!(err, Err(FairError::InvalidConfig { .. })));
    }

    #[test]
    fn empty_fairness_rejected() {
        assert!(Schema::from_names(&["gpa"], &[], &[]).is_err());
    }

    #[test]
    fn binary_validation() {
        let a = FairnessAttribute::binary("low_income");
        assert!(a.validate(0.0).is_ok());
        assert!(a.validate(1.0).is_ok());
        assert!(a.validate(0.5).is_err());
        assert!(a.validate(f64::NAN).is_err());
    }

    #[test]
    fn continuous_validation() {
        let a = FairnessAttribute::continuous("eni");
        assert!(a.validate(0.0).is_ok());
        assert!(a.validate(0.73).is_ok());
        assert!(a.validate(1.0).is_ok());
        assert!(a.validate(1.2).is_err());
        assert!(a.validate(-0.1).is_err());
        assert!(a.validate(f64::INFINITY).is_err());
    }

    #[test]
    fn fairness_vector_validation() {
        let s = school_schema();
        assert!(s.validate_fairness(&[1.0, 0.0, 1.0, 0.6]).is_ok());
        assert!(s.validate_fairness(&[1.0, 0.0, 1.0]).is_err());
        assert!(s.validate_fairness(&[2.0, 0.0, 1.0, 0.6]).is_err());
    }

    #[test]
    fn feature_vector_validation() {
        let s = school_schema();
        assert!(s.validate_features(&[3.5, 0.8]).is_ok());
        assert!(s.validate_features(&[3.5]).is_err());
        assert!(s.validate_features(&[f64::NAN, 0.8]).is_err());
    }

    #[test]
    fn kind_display() {
        assert_eq!(FairnessKind::Binary.to_string(), "binary");
        assert_eq!(FairnessKind::Continuous.to_string(), "continuous");
    }
}
