//! Ranked orders and top-k% selections.
//!
//! The ranking process `R` of Definition 1 "selects the k% best objects with
//! the highest f(o) values as its answer R_k". [`RankedSelection`] materializes
//! a ranked order once and answers selection queries for any `k`, which is
//! what the log-discounted disparity (Section IV-E), nDCG@k and exposure
//! metrics need.
//!
//! Two construction modes exist:
//!
//! * [`RankedSelection::from_scores`] fully sorts all `s` scores —
//!   `O(s log s)` — and supports every query;
//! * [`RankedSelection::from_scores_topk`] uses `select_nth_unstable` to
//!   partition the top `m` positions and sorts only those —
//!   `O(s + m log m)` — which is all the fixed-`k` DCA objectives need.
//!   Queries that depend on the order of the *unselected* tail
//!   ([`RankedSelection::order`], [`RankedSelection::unselected`],
//!   [`RankedSelection::rank_of`]) panic on such a partial ranking.
//!
//! Both modes use the same strict total order (descending
//! [`f64::total_cmp`], ties broken by ascending position), so the selected
//! *set and order* are identical between them — including in the presence of
//! NaN scores, which `total_cmp` orders deterministically instead of silently
//! corrupting the comparator.

use crate::error::{FairError, Result};
use std::cmp::Ordering;

/// Number of objects selected when taking the top `k` *fraction* of `n`
/// objects. At least one object is always selected for valid `k`; the paper's
/// k is a percentage ("selects the k% best objects").
///
/// # Errors
/// Returns [`FairError::InvalidSelectionFraction`] unless `0 < k <= 1`.
pub fn selection_size(n: usize, k: f64) -> Result<usize> {
    if !(k > 0.0 && k <= 1.0 && k.is_finite()) {
        return Err(FairError::InvalidSelectionFraction { k });
    }
    if n == 0 {
        return Ok(0);
    }
    Ok(((n as f64 * k).round() as usize).clamp(1, n))
}

/// The strict total order used for ranking: descending score, ties broken by
/// ascending original position — deterministic and NaN-sound. Shared with the
/// shard-wise selection kernels so that per-shard partial selections merge
/// into exactly the order a full sort would produce.
#[inline]
pub(crate) fn rank_cmp(scores: &[f64], a: usize, b: usize) -> Ordering {
    scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b))
}

/// A descending-score ranking of a set of objects (identified by their
/// positions in the originating [`crate::dataset::SampleView`]).
///
/// Ties are broken by the original position so that rankings are deterministic
/// and stable across runs — important both for reproducible experiments and
/// for the explainability goals of the paper. Scores are compared with
/// [`f64::total_cmp`], so NaN scores (which rank above `+inf` in descending
/// order) cannot corrupt the order.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSelection {
    /// View positions; the first [`RankedSelection::sorted_prefix`] entries
    /// are ordered best-to-worst, the tail (if any) is an unordered set of
    /// strictly worse positions.
    order: Vec<usize>,
    /// Effective score of each *view position* (index = view position).
    scores: Vec<f64>,
    /// Length of the sorted prefix of `order`; equal to `order.len()` for a
    /// fully sorted ranking.
    sorted_prefix: usize,
}

impl RankedSelection {
    /// Rank a score vector (one score per view position) in descending order,
    /// fully sorting it.
    #[must_use]
    pub fn from_scores(scores: Vec<f64>) -> Self {
        let mut this = Self {
            order: Vec::new(),
            scores,
            sorted_prefix: 0,
        };
        this.rerank(None);
        this
    }

    /// Rank a score vector so that only the top `m` positions are sorted
    /// (`O(s + m log m)` instead of `O(s log s)`).
    ///
    /// The resulting ranking answers every query whose selection boundary is
    /// at most `m` objects; queries needing the full order panic. `m` is
    /// clamped to the number of scores.
    #[must_use]
    pub fn from_scores_topk(scores: Vec<f64>, m: usize) -> Self {
        let mut this = Self {
            order: Vec::new(),
            scores,
            sorted_prefix: 0,
        };
        this.rerank(Some(m));
        this
    }

    /// Re-rank this selection in place from scores written by `fill` into the
    /// reused internal buffer — the allocation-free construction path used by
    /// the DCA hot loop. `topk` of `None` fully sorts; `Some(m)` sorts only
    /// the top `m` positions.
    pub fn refill_with(&mut self, topk: Option<usize>, fill: impl FnOnce(&mut Vec<f64>)) {
        self.scores.clear();
        fill(&mut self.scores);
        self.rerank(topk);
    }

    /// Rebuild `order` from the current `scores`.
    fn rerank(&mut self, topk: Option<usize>) {
        let n = self.scores.len();
        self.order.clear();
        self.order.extend(0..n);
        let scores = &self.scores;
        match topk {
            Some(m) if m < n => {
                // Partition so order[..m] holds the m best positions (the
                // comparator is a strict total order, so the partition is
                // exactly the full sort's prefix set), then sort the prefix.
                self.order
                    .select_nth_unstable_by(m, |&a, &b| rank_cmp(scores, a, b));
                self.order[..m].sort_unstable_by(|&a, &b| rank_cmp(scores, a, b));
                self.sorted_prefix = m;
            }
            _ => {
                self.order.sort_unstable_by(|&a, &b| rank_cmp(scores, a, b));
                self.sorted_prefix = n;
            }
        }
    }

    /// Number of ranked objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Length of the sorted prefix: `len()` for fully sorted rankings, the
    /// `m` of [`RankedSelection::from_scores_topk`] otherwise.
    #[must_use]
    pub fn sorted_prefix(&self) -> usize {
        self.sorted_prefix
    }

    /// Whether the whole order is sorted (constructed via
    /// [`RankedSelection::from_scores`] or with `m >= len`).
    #[must_use]
    pub fn is_fully_sorted(&self) -> bool {
        self.sorted_prefix == self.order.len()
    }

    #[track_caller]
    fn require_full(&self, what: &str) {
        assert!(
            self.is_fully_sorted(),
            "{what} requires a fully sorted ranking, but only the top {} of {} \
             positions are ordered (use RankedSelection::from_scores)",
            self.sorted_prefix,
            self.order.len()
        );
    }

    #[track_caller]
    fn require_prefix(&self, m: usize, what: &str) {
        assert!(
            m <= self.sorted_prefix,
            "{what} needs the top {m} positions but only the top {} of {} are \
             ordered (construct with a larger top-k)",
            self.sorted_prefix,
            self.order.len()
        );
    }

    /// The full ranked order: view positions from best to worst.
    ///
    /// # Panics
    /// Panics on a partially sorted ranking.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        self.require_full("order()");
        &self.order
    }

    /// Effective score of a view position.
    #[must_use]
    pub fn score_of(&self, position: usize) -> f64 {
        self.scores[position]
    }

    /// The view positions of the top-`k`-fraction selection, best first.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the selection boundary exceeds the sorted prefix of a
    /// partially sorted ranking.
    pub fn selected(&self, k: f64) -> Result<&[usize]> {
        let m = selection_size(self.order.len(), k)?;
        self.require_prefix(m, "selected()");
        Ok(&self.order[..m])
    }

    /// The view positions *not* selected at fraction `k`.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    ///
    /// # Panics
    /// Panics on a partially sorted ranking (the tail order is unspecified
    /// there).
    pub fn unselected(&self, k: f64) -> Result<&[usize]> {
        let m = selection_size(self.order.len(), k)?;
        self.require_full("unselected()");
        Ok(&self.order[m..])
    }

    /// The top-`count` view positions (clamped to the ranking length).
    ///
    /// # Panics
    /// Panics if `count` exceeds the sorted prefix of a partially sorted
    /// ranking.
    #[must_use]
    pub fn top(&self, count: usize) -> &[usize] {
        let count = count.min(self.order.len());
        self.require_prefix(count, "top()");
        &self.order[..count]
    }

    /// 0-based rank of a view position (0 = best), or `None` if the position
    /// does not exist.
    ///
    /// # Panics
    /// Panics on a partially sorted ranking.
    #[must_use]
    pub fn rank_of(&self, position: usize) -> Option<usize> {
        self.require_full("rank_of()");
        self.order.iter().position(|&p| p == position)
    }

    /// Boolean membership mask over view positions for the top-`k` selection.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn selection_mask(&self, k: f64) -> Result<Vec<bool>> {
        let mut mask = Vec::new();
        self.selection_mask_into(k, &mut mask)?;
        Ok(mask)
    }

    /// [`RankedSelection::selection_mask`] writing into a caller-provided
    /// buffer (the allocation-free path).
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn selection_mask_into(&self, k: f64, mask: &mut Vec<bool>) -> Result<()> {
        let selected = self.selected(k)?;
        mask.clear();
        mask.resize(self.order.len(), false);
        for &p in selected {
            mask[p] = true;
        }
        Ok(())
    }

    /// The score of the last selected object (the admission threshold that the
    /// paper recommends publishing for predictability), or `None` on an empty
    /// ranking.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn threshold_score(&self, k: f64) -> Result<Option<f64>> {
        let sel = self.selected(k)?;
        Ok(sel.last().map(|&p| self.scores[p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_size_rounds_and_clamps() {
        assert_eq!(selection_size(100, 0.05).unwrap(), 5);
        assert_eq!(selection_size(100, 1.0).unwrap(), 100);
        assert_eq!(selection_size(10, 0.001).unwrap(), 1, "at least one object");
        assert_eq!(selection_size(0, 0.5).unwrap(), 0);
        assert_eq!(selection_size(7, 0.5).unwrap(), 4, "3.5 rounds to 4");
    }

    #[test]
    fn selection_size_rejects_bad_fractions() {
        assert!(selection_size(10, 0.0).is_err());
        assert!(selection_size(10, -0.1).is_err());
        assert!(selection_size(10, 1.5).is_err());
        assert!(selection_size(10, f64::NAN).is_err());
    }

    #[test]
    fn ranking_orders_descending() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0]);
        assert_eq!(r.order(), &[1, 2, 0]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.is_fully_sorted());
    }

    #[test]
    fn ties_break_by_position_for_determinism() {
        let r = RankedSelection::from_scores(vec![2.0, 2.0, 2.0]);
        assert_eq!(r.order(), &[0, 1, 2]);
    }

    #[test]
    fn selected_and_unselected_partition_the_order() {
        let r = RankedSelection::from_scores(vec![10.0, 40.0, 30.0, 20.0]);
        let sel = r.selected(0.5).unwrap();
        let unsel = r.unselected(0.5).unwrap();
        assert_eq!(sel, &[1, 2]);
        assert_eq!(unsel, &[3, 0]);
        assert_eq!(sel.len() + unsel.len(), r.len());
    }

    #[test]
    fn top_clamps_to_length() {
        let r = RankedSelection::from_scores(vec![1.0, 2.0]);
        assert_eq!(r.top(5), &[1, 0]);
        assert_eq!(r.top(1), &[1]);
    }

    #[test]
    fn rank_of_and_scores() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0]);
        assert_eq!(r.rank_of(1), Some(0));
        assert_eq!(r.rank_of(0), Some(2));
        assert_eq!(r.rank_of(9), None);
        assert_eq!(r.score_of(2), 3.0);
    }

    #[test]
    fn selection_mask_marks_selected_positions() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0, 4.0]);
        let mask = r.selection_mask(0.5).unwrap();
        assert_eq!(mask, vec![false, true, false, true]);
    }

    #[test]
    fn threshold_score_is_last_selected() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0, 4.0]);
        assert_eq!(r.threshold_score(0.5).unwrap(), Some(4.0));
        let empty = RankedSelection::from_scores(vec![]);
        assert_eq!(empty.threshold_score(0.5).unwrap(), None);
    }

    #[test]
    fn partial_ranking_matches_full_sort_on_the_prefix() {
        let scores = vec![3.0, 9.0, 9.0, 1.0, 7.0, 2.0, 9.0, 0.5];
        let full = RankedSelection::from_scores(scores.clone());
        for m in 1..=scores.len() {
            let partial = RankedSelection::from_scores_topk(scores.clone(), m);
            assert_eq!(partial.sorted_prefix(), m.min(scores.len()));
            assert_eq!(partial.top(m), full.top(m), "prefix m = {m}");
        }
    }

    #[test]
    fn partial_ranking_answers_selection_queries_at_its_boundary() {
        let scores: Vec<f64> = (0..40).map(|i| f64::from((i * 7) % 13)).collect();
        let k = 0.25;
        let m = selection_size(scores.len(), k).unwrap();
        let full = RankedSelection::from_scores(scores.clone());
        let partial = RankedSelection::from_scores_topk(scores, m);
        assert_eq!(partial.selected(k).unwrap(), full.selected(k).unwrap());
        assert_eq!(
            partial.selection_mask(k).unwrap(),
            full.selection_mask(k).unwrap()
        );
        assert_eq!(
            partial.threshold_score(k).unwrap(),
            full.threshold_score(k).unwrap()
        );
        assert!(!partial.is_fully_sorted());
    }

    #[test]
    #[should_panic(expected = "fully sorted")]
    fn partial_ranking_rejects_full_order_queries() {
        let r = RankedSelection::from_scores_topk(vec![1.0, 2.0, 3.0, 4.0], 1);
        let _ = r.order();
    }

    #[test]
    #[should_panic(expected = "only the top")]
    fn partial_ranking_rejects_oversized_selections() {
        let r = RankedSelection::from_scores_topk(vec![1.0, 2.0, 3.0, 4.0], 1);
        let _ = r.selected(1.0);
    }

    #[test]
    fn refill_with_reuses_buffers_and_reranks() {
        let mut r = RankedSelection::from_scores(vec![1.0, 2.0]);
        r.refill_with(None, |scores| scores.extend([5.0, 1.0, 3.0]));
        assert_eq!(r.order(), &[0, 2, 1]);
        r.refill_with(Some(1), |scores| scores.extend([1.0, 9.0, 3.0]));
        assert_eq!(r.top(1), &[1]);
        assert_eq!(r.sorted_prefix(), 1);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        let r = RankedSelection::from_scores(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn nan_scores_rank_deterministically_and_consistently() {
        // Regression: the old `partial_cmp(..).unwrap_or(Equal)` comparator
        // was not a total order with NaN scores, so the sort could produce an
        // arbitrary, input-order-dependent permutation. With total_cmp, NaN
        // ranks above +inf in descending order, deterministically.
        let scores = vec![1.0, f64::NAN, f64::INFINITY, 3.0, f64::NAN, 2.0];
        let a = RankedSelection::from_scores(scores.clone());
        let b = RankedSelection::from_scores(scores.clone());
        assert_eq!(a.order(), b.order());
        assert_eq!(a.order(), &[1, 4, 2, 3, 5, 0], "NaNs first, then +inf");
        // The partial fast path agrees with the full sort even with NaNs.
        for m in 1..=scores.len() {
            let partial = RankedSelection::from_scores_topk(scores.clone(), m);
            assert_eq!(partial.top(m), a.top(m), "m = {m}");
        }
    }

    #[test]
    fn invalid_k_propagates_errors() {
        let r = RankedSelection::from_scores(vec![1.0, 2.0]);
        assert!(matches!(
            r.selected(0.0),
            Err(FairError::InvalidSelectionFraction { .. })
        ));
        assert!(r.selection_mask(2.0).is_err());
    }
}
