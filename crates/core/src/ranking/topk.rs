//! Ranked orders and top-k% selections.
//!
//! The ranking process `R` of Definition 1 "selects the k% best objects with
//! the highest f(o) values as its answer R_k". [`RankedSelection`] materializes
//! the full ranked order once and answers selection queries for any `k`, which
//! is what the log-discounted disparity (Section IV-E), nDCG@k and exposure
//! metrics need.

use crate::error::{FairError, Result};

/// Number of objects selected when taking the top `k` *fraction* of `n`
/// objects. At least one object is always selected for valid `k`; the paper's
/// k is a percentage ("selects the k% best objects").
///
/// # Errors
/// Returns [`FairError::InvalidSelectionFraction`] unless `0 < k <= 1`.
pub fn selection_size(n: usize, k: f64) -> Result<usize> {
    if !(k > 0.0 && k <= 1.0 && k.is_finite()) {
        return Err(FairError::InvalidSelectionFraction { k });
    }
    if n == 0 {
        return Ok(0);
    }
    Ok(((n as f64 * k).round() as usize).clamp(1, n))
}

/// A full descending-score ranking of a set of objects (identified by their
/// positions in the originating [`crate::dataset::SampleView`]).
///
/// Ties are broken by the original position so that rankings are deterministic
/// and stable across runs — important both for reproducible experiments and
/// for the explainability goals of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSelection {
    /// View positions ordered from best (highest score) to worst.
    order: Vec<usize>,
    /// Effective score of each *view position* (index = view position).
    scores: Vec<f64>,
}

impl RankedSelection {
    /// Rank a score vector (one score per view position) in descending order.
    #[must_use]
    pub fn from_scores(scores: Vec<f64>) -> Self {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        Self { order, scores }
    }

    /// Number of ranked objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The full ranked order: view positions from best to worst.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Effective score of a view position.
    #[must_use]
    pub fn score_of(&self, position: usize) -> f64 {
        self.scores[position]
    }

    /// The view positions of the top-`k`-fraction selection, best first.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn selected(&self, k: f64) -> Result<&[usize]> {
        let m = selection_size(self.order.len(), k)?;
        Ok(&self.order[..m])
    }

    /// The view positions *not* selected at fraction `k`.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn unselected(&self, k: f64) -> Result<&[usize]> {
        let m = selection_size(self.order.len(), k)?;
        Ok(&self.order[m..])
    }

    /// The top-`count` view positions (clamped to the ranking length).
    #[must_use]
    pub fn top(&self, count: usize) -> &[usize] {
        &self.order[..count.min(self.order.len())]
    }

    /// 0-based rank of a view position (0 = best), or `None` if the position
    /// does not exist.
    #[must_use]
    pub fn rank_of(&self, position: usize) -> Option<usize> {
        self.order.iter().position(|&p| p == position)
    }

    /// Boolean membership mask over view positions for the top-`k` selection.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn selection_mask(&self, k: f64) -> Result<Vec<bool>> {
        let selected = self.selected(k)?;
        let mut mask = vec![false; self.order.len()];
        for &p in selected {
            mask[p] = true;
        }
        Ok(mask)
    }

    /// The score of the last selected object (the admission threshold that the
    /// paper recommends publishing for predictability), or `None` on an empty
    /// ranking.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]`.
    pub fn threshold_score(&self, k: f64) -> Result<Option<f64>> {
        let sel = self.selected(k)?;
        Ok(sel.last().map(|&p| self.scores[p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_size_rounds_and_clamps() {
        assert_eq!(selection_size(100, 0.05).unwrap(), 5);
        assert_eq!(selection_size(100, 1.0).unwrap(), 100);
        assert_eq!(selection_size(10, 0.001).unwrap(), 1, "at least one object");
        assert_eq!(selection_size(0, 0.5).unwrap(), 0);
        assert_eq!(selection_size(7, 0.5).unwrap(), 4, "3.5 rounds to 4");
    }

    #[test]
    fn selection_size_rejects_bad_fractions() {
        assert!(selection_size(10, 0.0).is_err());
        assert!(selection_size(10, -0.1).is_err());
        assert!(selection_size(10, 1.5).is_err());
        assert!(selection_size(10, f64::NAN).is_err());
    }

    #[test]
    fn ranking_orders_descending() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0]);
        assert_eq!(r.order(), &[1, 2, 0]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn ties_break_by_position_for_determinism() {
        let r = RankedSelection::from_scores(vec![2.0, 2.0, 2.0]);
        assert_eq!(r.order(), &[0, 1, 2]);
    }

    #[test]
    fn selected_and_unselected_partition_the_order() {
        let r = RankedSelection::from_scores(vec![10.0, 40.0, 30.0, 20.0]);
        let sel = r.selected(0.5).unwrap();
        let unsel = r.unselected(0.5).unwrap();
        assert_eq!(sel, &[1, 2]);
        assert_eq!(unsel, &[3, 0]);
        assert_eq!(sel.len() + unsel.len(), r.len());
    }

    #[test]
    fn top_clamps_to_length() {
        let r = RankedSelection::from_scores(vec![1.0, 2.0]);
        assert_eq!(r.top(5), &[1, 0]);
        assert_eq!(r.top(1), &[1]);
    }

    #[test]
    fn rank_of_and_scores() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0]);
        assert_eq!(r.rank_of(1), Some(0));
        assert_eq!(r.rank_of(0), Some(2));
        assert_eq!(r.rank_of(9), None);
        assert_eq!(r.score_of(2), 3.0);
    }

    #[test]
    fn selection_mask_marks_selected_positions() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0, 4.0]);
        let mask = r.selection_mask(0.5).unwrap();
        assert_eq!(mask, vec![false, true, false, true]);
    }

    #[test]
    fn threshold_score_is_last_selected() {
        let r = RankedSelection::from_scores(vec![1.0, 5.0, 3.0, 4.0]);
        assert_eq!(r.threshold_score(0.5).unwrap(), Some(4.0));
        let empty = RankedSelection::from_scores(vec![]);
        assert_eq!(empty.threshold_score(0.5).unwrap(), None);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        let r = RankedSelection::from_scores(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn invalid_k_propagates_errors() {
        let r = RankedSelection::from_scores(vec![1.0, 2.0]);
        assert!(matches!(
            r.selected(0.0),
            Err(FairError::InvalidSelectionFraction { .. })
        ));
        assert!(r.selection_mask(2.0).is_err());
    }
}
