//! Concrete score-based ranking functions.
//!
//! * [`WeightedSumRanker`] — the school-admission rubric of Section V-A:
//!   `f = 0.55 * GPA + 0.45 * TestScores` (weights are configurable).
//! * [`NormalizedWeightedSum`] — the same, but rescaling each feature to a
//!   common `[0, 100]` range first, which is how schools publish rubrics.
//! * [`SingleFeatureRanker`] — ranks by a single feature column, optionally
//!   negated; used for the COMPAS decile score, where the ranking used in
//!   practice *is* the (proprietary) score itself.

use crate::error::{FairError, Result};
use crate::object::ObjectView;
use crate::ranking::Ranker;

/// Weighted sum of the ranking features: `f(o) = Σ w_i · a_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSumRanker {
    weights: Vec<f64>,
}

impl WeightedSumRanker {
    /// Build from per-feature weights (aligned with the schema feature order).
    ///
    /// # Errors
    /// Returns an error if `weights` is empty or contains non-finite values.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "weighted-sum ranker requires at least one weight".into(),
            });
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(FairError::InvalidConfig {
                reason: "weights must be finite".into(),
            });
        }
        Ok(Self { weights })
    }

    /// The NYC screened-school rubric used throughout the paper's evaluation:
    /// 55% GPA, 45% state test scores, both already normalized to `[0, 100]`.
    ///
    /// # Errors
    /// Never fails; returns `Result` for constructor uniformity.
    pub fn school_rubric() -> Result<Self> {
        Self::new(vec![0.55, 0.45])
    }

    /// Per-feature weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Ranker for WeightedSumRanker {
    fn base_score(&self, object: ObjectView<'_>) -> f64 {
        debug_assert_eq!(
            object.features().len(),
            self.weights.len(),
            "feature dimensionality mismatch"
        );
        self.feature_score(object.features())
            .expect("weighted sum scores any feature row")
    }

    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        Some(crate::kernel::dot(features, &self.weights))
    }

    fn linear_weights(&self) -> Option<&[f64]> {
        Some(&self.weights)
    }

    fn describe(&self) -> String {
        let terms: Vec<String> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| format!("{w:.2}*a{i}"))
            .collect();
        format!("weighted sum: {}", terms.join(" + "))
    }
}

/// A weighted sum over features rescaled from their observed `[min, max]`
/// ranges to `[0, 100]`, so that weights express rubric percentages directly.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedWeightedSum {
    weights: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl NormalizedWeightedSum {
    /// Build from weights and per-feature `[min, max]` ranges.
    ///
    /// # Errors
    /// Returns an error if lengths disagree, any range is degenerate
    /// (`max <= min`), or any value is non-finite.
    pub fn new(weights: Vec<f64>, mins: Vec<f64>, maxs: Vec<f64>) -> Result<Self> {
        if weights.is_empty() || weights.len() != mins.len() || weights.len() != maxs.len() {
            return Err(FairError::InvalidConfig {
                reason: "weights, mins and maxs must be equally sized and non-empty".into(),
            });
        }
        for ((w, lo), hi) in weights.iter().zip(&mins).zip(&maxs) {
            if !w.is_finite() || !lo.is_finite() || !hi.is_finite() {
                return Err(FairError::InvalidConfig {
                    reason: "values must be finite".into(),
                });
            }
            if hi <= lo {
                return Err(FairError::InvalidConfig {
                    reason: format!("degenerate feature range [{lo}, {hi}]"),
                });
            }
        }
        Ok(Self {
            weights,
            mins,
            maxs,
        })
    }

    /// Rescale one feature value to `[0, 100]`, clamping out-of-range inputs.
    fn rescale(&self, i: usize, value: f64) -> f64 {
        let (lo, hi) = (self.mins[i], self.maxs[i]);
        100.0 * ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

impl Ranker for NormalizedWeightedSum {
    fn base_score(&self, object: ObjectView<'_>) -> f64 {
        debug_assert_eq!(object.features().len(), self.weights.len());
        self.feature_score(object.features())
            .expect("normalized weighted sum scores any feature row")
    }

    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        Some(
            features
                .iter()
                .enumerate()
                .map(|(i, &a)| self.weights[i] * self.rescale(i, a))
                .sum(),
        )
    }

    fn describe(&self) -> String {
        format!(
            "normalized weighted sum over {} features (0-100 scale)",
            self.weights.len()
        )
    }
}

/// Ranks by a single feature column, optionally negated.
///
/// For COMPAS, the ranking function "is" the decile score: selecting the top
/// k% highest deciles yields the set flagged as high recidivism risk. No
/// negation is needed there; negation is available for scores where *lower*
/// raw values should rank first while keeping the "selected = top-k%"
/// convention of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleFeatureRanker {
    feature_index: usize,
    negate: bool,
}

impl SingleFeatureRanker {
    /// Rank by the feature at `feature_index` (higher value ranks first).
    #[must_use]
    pub fn new(feature_index: usize) -> Self {
        Self {
            feature_index,
            negate: false,
        }
    }

    /// Rank by the negated feature (lower raw value ranks first).
    #[must_use]
    pub fn negated(feature_index: usize) -> Self {
        Self {
            feature_index,
            negate: true,
        }
    }

    /// The feature column this ranker reads.
    #[must_use]
    pub fn feature_index(&self) -> usize {
        self.feature_index
    }
}

impl Ranker for SingleFeatureRanker {
    fn base_score(&self, object: ObjectView<'_>) -> f64 {
        self.feature_score(object.features())
            .expect("single-feature ranker scores any feature row")
    }

    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        let v = features
            .get(self.feature_index)
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        Some(if self.negate { -v } else { v })
    }

    fn describe(&self) -> String {
        if self.negate {
            format!(
                "single feature #{} (negated: lower is better)",
                self.feature_index
            )
        } else {
            format!("single feature #{}", self.feature_index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::DataObject;

    fn obj(features: Vec<f64>) -> DataObject {
        DataObject::new_unchecked(0, features, vec![0.0], None)
    }

    #[test]
    fn weighted_sum_matches_school_rubric() {
        let r = WeightedSumRanker::school_rubric().unwrap();
        // 0.55*90 + 0.45*80 = 49.5 + 36 = 85.5
        let o = obj(vec![90.0, 80.0]);
        assert!((r.base_score(o.as_view()) - 85.5).abs() < 1e-12);
        assert_eq!(r.weights(), &[0.55, 0.45]);
        assert!(r.describe().contains("0.55"));
    }

    #[test]
    fn weighted_sum_rejects_bad_weights() {
        assert!(WeightedSumRanker::new(vec![]).is_err());
        assert!(WeightedSumRanker::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn normalized_weighted_sum_rescales_to_percentages() {
        // GPA in [1, 4], test in [0, 800]; 50/50 rubric.
        let r =
            NormalizedWeightedSum::new(vec![0.5, 0.5], vec![1.0, 0.0], vec![4.0, 800.0]).unwrap();
        // GPA 4.0 -> 100, test 400 -> 50 => 0.5*100 + 0.5*50 = 75
        let o = obj(vec![4.0, 400.0]);
        assert!((r.base_score(o.as_view()) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_weighted_sum_clamps_out_of_range() {
        let r = NormalizedWeightedSum::new(vec![1.0], vec![0.0], vec![10.0]).unwrap();
        assert!((r.base_score(obj(vec![20.0]).as_view()) - 100.0).abs() < 1e-9);
        assert!((r.base_score(obj(vec![-5.0]).as_view()) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_weighted_sum_validation() {
        assert!(NormalizedWeightedSum::new(vec![1.0], vec![0.0], vec![0.0]).is_err());
        assert!(NormalizedWeightedSum::new(vec![1.0, 1.0], vec![0.0], vec![1.0]).is_err());
        assert!(NormalizedWeightedSum::new(vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn single_feature_ranker_reads_and_negates() {
        let o = obj(vec![3.0, 7.0]);
        assert_eq!(SingleFeatureRanker::new(1).base_score(o.as_view()), 7.0);
        assert_eq!(
            SingleFeatureRanker::negated(1).base_score(o.as_view()),
            -7.0
        );
        assert_eq!(SingleFeatureRanker::new(1).feature_index(), 1);
        assert!(SingleFeatureRanker::negated(0)
            .describe()
            .contains("negated"));
    }

    #[test]
    fn single_feature_out_of_range_ranks_last() {
        let o = obj(vec![3.0]);
        assert_eq!(
            SingleFeatureRanker::new(5).base_score(o.as_view()),
            f64::NEG_INFINITY
        );
    }
}
