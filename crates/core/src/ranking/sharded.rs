//! Shard-wise scoring and selection: the ranking-layer kernels of the
//! parallel evaluation engine.
//!
//! Every function is generic over [`ShardSource`], so the same kernels drive
//! the in-memory [`crate::shard::ShardedDataset`] and the out-of-core
//! `fair_store::ShardStore` unchanged. Scoring is embarrassingly parallel
//! (one kernel per shard, concatenated in shard order — bit-for-bit the
//! serial scores). Selection runs a per-shard partial top-`m`
//! ([`std::slice::select_nth_unstable_by`]) and merges the candidate sets
//! under the same strict total order the serial
//! [`RankedSelection`](crate::ranking::topk::RankedSelection) uses
//! (descending [`f64::total_cmp`], ties by ascending global position), so the
//! selected positions — set *and* order — are identical to a full sort for
//! every shard size and worker count. The selection kernels ([`top_m`],
//! [`rank_of`]) consume only the score vector and the shard *layout* — no
//! shard data is paged in, which matters for cached out-of-core sources.

use crate::parallel::parallel_map;
use crate::ranking::topk::{rank_cmp, selection_size};
use crate::ranking::Ranker;
use crate::shard::ShardSource;

/// Effective (bonus-adjusted) scores of every row, in global row order —
/// per-shard scoring kernels concatenated in shard order.
///
/// # Panics
/// Panics if `bonus.len()` differs from the schema's fairness dimensionality.
#[must_use]
pub fn effective_scores<S, R>(data: &S, ranker: &R, bonus: &[f64]) -> Vec<f64>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
{
    let mut out = Vec::new();
    effective_scores_into(data, ranker, bonus, &mut out);
    out
}

/// [`effective_scores`] writing into a caller-provided buffer.
///
/// # Panics
/// Panics if `bonus.len()` differs from the schema's fairness dimensionality.
pub fn effective_scores_into<S, R>(data: &S, ranker: &R, bonus: &[f64], out: &mut Vec<f64>)
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
{
    assert_eq!(
        bonus.len(),
        data.schema().num_fairness(),
        "bonus vector dimensionality mismatch"
    );
    let nf = data.schema().num_features();
    // Plain linear rankers run each shard as two blocked matrix passes; the
    // per-row arithmetic is the same kernel::dot pair as the fallback, so
    // both paths produce bit-identical scores.
    let linear = ranker
        .linear_weights()
        .filter(|w| !w.is_empty() && w.len() == nf);
    let per_shard = data.map_shards(|shard| {
        let d = shard.data();
        let mut scores = Vec::with_capacity(d.len());
        if let Some(w) = linear {
            crate::kernel::dot_rows_into(d.features_matrix(), nf, w, &mut scores);
            crate::kernel::add_dot_rows_into(d.fairness_matrix(), bonus.len(), bonus, &mut scores);
        } else {
            scores.extend((0..d.len()).map(|i| {
                let base = match ranker.feature_score(d.feature_row(i)) {
                    Some(score) => score,
                    None => ranker.base_score(d.row(i)),
                };
                let increment = crate::kernel::dot(d.fairness_row(i), bonus);
                base + increment
            }));
        }
        scores
    });
    out.clear();
    out.reserve(data.len());
    for scores in per_shard {
        out.extend_from_slice(&scores);
    }
}

/// Effective scores derived from already-computed base scores:
/// `adjusted[i] = base[i] + fairness_row(i) · bonus`, per shard. Exactly the
/// arithmetic of [`effective_scores`] (base term first, increment added
/// once), so the result is bit-for-bit identical — at half the work, since
/// the ranker is not re-run.
///
/// # Panics
/// Panics if `base.len()` differs from `data.len()` or `bonus.len()` from
/// the fairness dimensionality.
#[must_use]
pub fn adjust_base_scores<S>(data: &S, base: &[f64], bonus: &[f64]) -> Vec<f64>
where
    S: ShardSource + ?Sized,
{
    assert_eq!(base.len(), data.len(), "one base score per row required");
    assert_eq!(
        bonus.len(),
        data.schema().num_fairness(),
        "bonus vector dimensionality mismatch"
    );
    let per_shard = data.map_shards(|shard| {
        let d = shard.data();
        let mut scores = Vec::with_capacity(d.len());
        if !d.is_empty() {
            // Shards cover contiguous global ranges: seed with the base
            // slice, then add the increments in one blocked pass. The add
            // is the same kernel::dot per row as effective_scores'.
            let offset = shard.global_index(0);
            scores.extend_from_slice(&base[offset..offset + d.len()]);
            crate::kernel::add_dot_rows_into(d.fairness_matrix(), bonus.len(), bonus, &mut scores);
        }
        scores
    });
    let mut out = Vec::with_capacity(data.len());
    for scores in per_shard {
        out.extend_from_slice(&scores);
    }
    out
}

/// Base (unadjusted) scores of every row, in global row order.
#[must_use]
pub fn base_scores<S, R>(data: &S, ranker: &R) -> Vec<f64>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
{
    let nf = data.schema().num_features();
    let linear = ranker
        .linear_weights()
        .filter(|w| !w.is_empty() && w.len() == nf);
    let per_shard = data.map_shards(|shard| {
        let d = shard.data();
        let mut scores = Vec::with_capacity(d.len());
        if let Some(w) = linear {
            crate::kernel::dot_rows_into(d.features_matrix(), nf, w, &mut scores);
        } else {
            scores.extend(
                (0..d.len()).map(|i| match ranker.feature_score(d.feature_row(i)) {
                    Some(score) => score,
                    None => ranker.base_score(d.row(i)),
                }),
            );
        }
        scores
    });
    let mut out = Vec::with_capacity(data.len());
    for scores in per_shard {
        out.extend_from_slice(&scores);
    }
    out
}

/// A `u64` whose natural ascending order equals **descending**
/// [`f64::total_cmp`] order of the score. The standard monotone IEEE-754 map
/// (flip all bits of negatives, flip the sign bit of non-negatives) turns
/// `total_cmp` into unsigned integer order; inverting it flips the direction.
/// Pairing the key with the position gives a POD tuple whose derived `Ord`
/// is exactly [`rank_cmp`] — descending score, ties by ascending position —
/// so partitions and sorts run on 16-byte values with branch-friendly
/// integer comparisons instead of chasing `scores[a]`/`scores[b]` gathers.
#[inline]
pub(crate) fn descending_key(score: f64) -> u64 {
    let bits = score.to_bits();
    let ascending = bits ^ ((((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000);
    !ascending
}

/// The global positions of the `m` best scores, best first — exactly the
/// prefix a full descending sort would produce (same strict total order, same
/// deterministic tie-break).
///
/// When per-shard pruning pays off (`m` well below the shard size), each
/// shard partial-selects its own top `min(m, len)` in parallel and only the
/// merged candidates are partitioned; otherwise a single global partition is
/// used. Both paths produce the canonical top-`m` under the strict total
/// order, so the choice is invisible to callers. Only `scores` and the shard
/// *layout* are consulted — no shard data is paged in.
///
/// `scores` must hold one score per global row; `m` is clamped to the row
/// count.
///
/// # Panics
/// Panics if `scores.len()` differs from `data.len()`.
#[must_use]
pub fn top_m<S>(data: &S, scores: &[f64], m: usize) -> Vec<usize>
where
    S: ShardSource + ?Sized,
{
    assert_eq!(scores.len(), data.len(), "one score per row required");
    let n = data.len();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    let keyed = |range: std::ops::Range<usize>| -> Vec<(u64, u64)> {
        range
            .map(|p| (descending_key(scores[p]), p as u64))
            .collect()
    };
    // Per-shard candidate pruning only helps when the surviving candidate set
    // is materially smaller than the cohort.
    let num_shards = data.num_shards();
    let candidate_total: usize = (0..num_shards).map(|i| data.shard_len(i).min(m)).sum();
    let mut candidates: Vec<(u64, u64)> = if candidate_total * 2 <= n {
        let indices: Vec<usize> = (0..num_shards).collect();
        let per_shard = parallel_map(&indices, |&i| {
            let offset = data.shard_offset(i);
            let mut local = keyed(offset..offset + data.shard_len(i));
            let keep = m.min(local.len());
            if keep < local.len() {
                local.select_nth_unstable(keep);
                local.truncate(keep);
            }
            local
        });
        per_shard.into_iter().flatten().collect()
    } else {
        keyed(0..n)
    };
    if m < candidates.len() {
        candidates.select_nth_unstable(m);
        candidates.truncate(m);
    }
    candidates.sort_unstable();
    candidates
        .into_iter()
        .map(|(_, p)| usize::try_from(p).expect("positions fit usize"))
        .collect()
}

/// The global positions of the top-`k`-fraction selection, best first.
///
/// # Errors
/// Returns an error for `k` outside `(0, 1]`.
///
/// # Panics
/// Panics if `scores.len()` differs from `data.len()`.
pub fn selected_at_k<S>(data: &S, scores: &[f64], k: f64) -> crate::error::Result<Vec<usize>>
where
    S: ShardSource + ?Sized,
{
    let m = selection_size(data.len(), k)?;
    Ok(top_m(data, scores, m))
}

/// The 0-based rank a full descending sort would assign to `position`: the
/// number of positions ordered strictly before it — counted shard by shard in
/// parallel (an exact integer reduction over the score vector; no shard data
/// is paged in).
///
/// # Panics
/// Panics if `scores.len()` differs from `data.len()` or `position` is out of
/// bounds.
#[must_use]
pub fn rank_of<S>(data: &S, scores: &[f64], position: usize) -> usize
where
    S: ShardSource + ?Sized,
{
    assert_eq!(scores.len(), data.len(), "one score per row required");
    assert!(position < data.len(), "position out of bounds");
    let indices: Vec<usize> = (0..data.num_shards()).collect();
    parallel_map(&indices, |&i| {
        let offset = data.shard_offset(i);
        (offset..offset + data.shard_len(i))
            .filter(|&p| p != position && rank_cmp(scores, p, position).is_lt())
            .count()
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::WeightedSumRanker;
    use crate::shard::ShardedDataset;

    fn sharded(n: u64, shard_size: usize) -> ShardedDataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                // Non-monotone scores with ties to exercise the tie-break.
                let score = f64::from(u32::try_from((i * 7) % 13).unwrap());
                DataObject::new_unchecked(
                    i,
                    vec![score],
                    vec![f64::from(u8::from(i % 4 == 0))],
                    None,
                )
            })
            .collect();
        ShardedDataset::from_objects(schema, objects, shard_size).unwrap()
    }

    #[test]
    fn sharded_scores_match_serial_bitwise() {
        let data = sharded(53, 7);
        let flat = data.to_dataset();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let view = flat.full_view();
        let serial = crate::ranking::effective_scores(&view, &ranker, &[2.5]);
        let shardwise = effective_scores(&data, &ranker, &[2.5]);
        assert_eq!(serial, shardwise);
        let serial_base = crate::ranking::base_scores(&view, &ranker);
        assert_eq!(serial_base, base_scores(&data, &ranker));
    }

    #[test]
    fn adjusting_base_scores_matches_scoring_from_scratch_bitwise() {
        let data = sharded(53, 7);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let base = base_scores(&data, &ranker);
        for bonus in [[0.0], [2.5], [-1.75]] {
            let from_scratch = effective_scores(&data, &ranker, &bonus);
            let adjusted = adjust_base_scores(&data, &base, &bonus);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&from_scratch), bits(&adjusted), "bonus {bonus:?}");
        }
    }

    #[test]
    fn top_m_matches_full_sort_for_every_shard_size_and_m() {
        for shard_size in [1, 5, 7, 64, 1000] {
            let data = sharded(53, shard_size);
            let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
            let scores = effective_scores(&data, &ranker, &[0.0]);
            let full = RankedSelection::from_scores(scores.clone());
            for m in [0, 1, 2, 7, 26, 52, 53, 99] {
                let got = top_m(&data, &scores, m);
                assert_eq!(got, full.top(m), "shard {shard_size}, m {m}");
            }
        }
    }

    #[test]
    fn selected_at_k_matches_ranked_selection() {
        let data = sharded(40, 6);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&data, &ranker, &[1.0]);
        let full = RankedSelection::from_scores(scores.clone());
        for k in [0.05, 0.25, 0.5, 1.0] {
            assert_eq!(
                selected_at_k(&data, &scores, k).unwrap(),
                full.selected(k).unwrap(),
                "k {k}"
            );
        }
        assert!(selected_at_k(&data, &scores, 0.0).is_err());
    }

    #[test]
    fn rank_of_matches_full_sort() {
        let data = sharded(29, 4);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&data, &ranker, &[0.5]);
        let full = RankedSelection::from_scores(scores.clone());
        for p in 0..29 {
            assert_eq!(Some(rank_of(&data, &scores, p)), full.rank_of(p), "{p}");
        }
    }

    #[test]
    fn descending_key_order_is_exactly_total_cmp_descending() {
        let tricky = [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e300,
            -5e300,
        ];
        for &a in &tricky {
            for &b in &tricky {
                assert_eq!(
                    super::descending_key(a).cmp(&super::descending_key(b)),
                    b.total_cmp(&a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn top_m_handles_nan_and_signed_zero_like_the_full_sort() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let tricky = [f64::NAN, 1.0, -0.0, 0.0, f64::INFINITY, -1.0, f64::NAN];
        let objects = tricky
            .iter()
            .enumerate()
            .map(|(i, &s)| DataObject::new_unchecked(i as u64, vec![s], vec![0.0], None))
            .collect();
        let data = ShardedDataset::from_objects(schema, objects, 2).unwrap();
        let scores: Vec<f64> = tricky.to_vec();
        let full = RankedSelection::from_scores(scores.clone());
        for m in 1..=tricky.len() {
            assert_eq!(top_m(&data, &scores, m), full.top(m), "m {m}");
        }
    }

    #[test]
    #[should_panic(expected = "one score per row")]
    fn mismatched_scores_panic() {
        let data = sharded(10, 3);
        let _ = top_m(&data, &[1.0, 2.0], 1);
    }
}
