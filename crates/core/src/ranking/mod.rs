//! Score-based ranking functions and top-k% selection (Definition 1).
//!
//! A [`Ranker`] maps an object's *ranking features* to a base score `f(o)`.
//! Bonus points enter only through [`crate::bonus::BonusVector`]: the effective
//! score is `f_b(o) = f(o) + A_f · B` (Definition 2). The [`topk`] module turns
//! effective scores into ranked orders and top-k% selections, which is what
//! every fairness metric consumes.

pub mod score;
pub mod sharded;
pub mod topk;

pub use score::{NormalizedWeightedSum, SingleFeatureRanker, WeightedSumRanker};
pub use topk::{selection_size, RankedSelection};

use crate::dataset::SampleView;
use crate::object::ObjectView;

/// A score-based ranking function `f` over an object's ranking features.
///
/// Higher scores rank first; the "selected" set of a ranking process is the
/// top-k% by effective score. For settings where being selected is the
/// *unfavorable* outcome (e.g. being flagged high-risk by COMPAS), the same
/// machinery applies — only the sign policy of the bonus vector changes (see
/// [`crate::bonus::BonusPolarity`]).
///
/// Rankers consume the zero-copy [`ObjectView`] row type, so scoring a view
/// streams over the dataset's contiguous column store; an owned
/// [`crate::object::DataObject`] is scored via
/// [`crate::object::DataObject::as_view`].
pub trait Ranker: Send + Sync {
    /// Base score `f(o)` of an object, before any bonus points.
    fn base_score(&self, object: ObjectView<'_>) -> f64;

    /// Score an object directly from its ranking-feature row, for ranking
    /// functions that depend on the features alone (every built-in ranker
    /// does). Returning `None` — the default — routes scoring through
    /// [`Ranker::base_score`] with the full object view.
    ///
    /// This is the columnar fast path: when a ranker answers here,
    /// [`effective_scores_into`] scores a view by streaming only the feature
    /// and fairness matrices, skipping the random-access gathers of the id
    /// and label columns that sampled scoring would otherwise pay on large
    /// datasets. Implementations must compute exactly the same value as
    /// [`Ranker::base_score`].
    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        let _ = features;
        None
    }

    /// The weight vector of a *plain linear* ranker — one whose base score
    /// is exactly `dot(features, weights)` with no normalization or other
    /// per-row transform. Returning `Some` — the default is `None` — lets
    /// the scoring paths run the matrix as one blocked
    /// [`crate::kernel::dot_rows_into`] pass instead of a per-row virtual
    /// call. Each row's value is computed by the same [`crate::kernel::dot`]
    /// kernel either way, so the fast path is bit-for-bit the slow one.
    fn linear_weights(&self) -> Option<&[f64]> {
        None
    }

    /// A short human-readable description of the ranking function, used in
    /// explanations shown to stakeholders.
    fn describe(&self) -> String {
        "score-based ranking function".to_string()
    }
}

impl<T: Ranker + ?Sized> Ranker for &T {
    fn base_score(&self, object: ObjectView<'_>) -> f64 {
        (**self).base_score(object)
    }
    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        (**self).feature_score(features)
    }
    fn linear_weights(&self) -> Option<&[f64]> {
        (**self).linear_weights()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<T: Ranker + ?Sized> Ranker for Box<T> {
    fn base_score(&self, object: ObjectView<'_>) -> f64 {
        (**self).base_score(object)
    }
    fn feature_score(&self, features: &[f64]) -> Option<f64> {
        (**self).feature_score(features)
    }
    fn linear_weights(&self) -> Option<&[f64]> {
        (**self).linear_weights()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Compute the effective (bonus-adjusted) scores of every object in a view:
/// `f_b(o) = f(o) + A_f · B` for each object, in view order.
///
/// # Panics
/// Panics if `bonus.len()` differs from the view's fairness dimensionality.
#[must_use]
pub fn effective_scores<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    bonus: &[f64],
) -> Vec<f64> {
    let mut out = Vec::new();
    effective_scores_into(view, ranker, bonus, &mut out);
    out
}

/// [`effective_scores`] writing into a caller-provided buffer — the
/// allocation-free path used by the DCA hot loop.
///
/// # Panics
/// Panics if `bonus.len()` differs from the view's fairness dimensionality.
pub fn effective_scores_into<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    bonus: &[f64],
    out: &mut Vec<f64>,
) {
    assert_eq!(
        bonus.len(),
        view.schema().num_fairness(),
        "bonus vector dimensionality mismatch"
    );
    let dataset = view.dataset();
    if let Some(weights) = ranker.linear_weights().filter(|w| !w.is_empty()) {
        // Plain linear ranker: one blocked gather over the feature and
        // fairness matrices. Per-row arithmetic is the same kernel::dot
        // pair as the fallback below, so the value is bit-identical.
        crate::kernel::gathered_linear_scores_into(
            dataset.features_matrix(),
            view.schema().num_features(),
            weights,
            dataset.fairness_matrix(),
            bonus.len(),
            bonus,
            view.indices(),
            out,
        );
        return;
    }
    out.clear();
    out.reserve(view.len());
    out.extend(view.indices().iter().map(|&i| {
        // Feature-only rankers skip the id/label gathers entirely; sampled
        // scoring then touches just two cache lines per row.
        let base = match ranker.feature_score(dataset.feature_row(i)) {
            Some(score) => score,
            None => ranker.base_score(dataset.row(i)),
        };
        let increment = crate::kernel::dot(dataset.fairness_row(i), bonus);
        base + increment
    }));
}

/// Compute base (unadjusted) scores of every object in a view, in view order.
#[must_use]
pub fn base_scores<R: Ranker + ?Sized>(view: &SampleView<'_>, ranker: &R) -> Vec<f64> {
    let mut out = Vec::new();
    base_scores_into(view, ranker, &mut out);
    out
}

/// [`base_scores`] writing into a caller-provided buffer.
pub fn base_scores_into<R: Ranker + ?Sized>(view: &SampleView<'_>, ranker: &R, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(view.len());
    let dataset = view.dataset();
    out.extend(view.indices().iter().map(
        |&i| match ranker.feature_score(dataset.feature_row(i)) {
            Some(score) => score,
            None => ranker.base_score(dataset.row(i)),
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;

    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["gpa"], &["li"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![1.0], vec![1.0], None),
            DataObject::new_unchecked(1, vec![2.0], vec![0.0], None),
        ];
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn effective_scores_add_bonus_for_members() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[5.0]);
        assert_eq!(scores, vec![6.0, 2.0]);
        let base = base_scores(&view, &ranker);
        assert_eq!(base, vec![1.0, 2.0]);
    }

    #[test]
    fn ranker_is_object_safe_and_usable_behind_references() {
        let d = dataset();
        let view = d.full_view();
        let ranker: Box<dyn Ranker> = Box::new(WeightedSumRanker::new(vec![2.0]).unwrap());
        let scores = effective_scores(&view, &ranker, &[0.0]);
        assert_eq!(scores, vec![2.0, 4.0]);
        assert!(ranker.describe().contains("weighted"));
        let by_ref: &dyn Ranker = &*ranker;
        assert_eq!(by_ref.base_score(view.object(1)), 4.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_bonus_length_panics() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let _ = effective_scores(&view, &ranker, &[1.0, 2.0]);
    }
}
