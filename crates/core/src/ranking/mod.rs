//! Score-based ranking functions and top-k% selection (Definition 1).
//!
//! A [`Ranker`] maps an object's *ranking features* to a base score `f(o)`.
//! Bonus points enter only through [`crate::bonus::BonusVector`]: the effective
//! score is `f_b(o) = f(o) + A_f · B` (Definition 2). The [`topk`] module turns
//! effective scores into ranked orders and top-k% selections, which is what
//! every fairness metric consumes.

pub mod score;
pub mod topk;

pub use score::{NormalizedWeightedSum, SingleFeatureRanker, WeightedSumRanker};
pub use topk::{selection_size, RankedSelection};

use crate::dataset::SampleView;
use crate::object::DataObject;

/// A score-based ranking function `f` over an object's ranking features.
///
/// Higher scores rank first; the "selected" set of a ranking process is the
/// top-k% by effective score. For settings where being selected is the
/// *unfavorable* outcome (e.g. being flagged high-risk by COMPAS), the same
/// machinery applies — only the sign policy of the bonus vector changes (see
/// [`crate::bonus::BonusPolarity`]).
pub trait Ranker: Send + Sync {
    /// Base score `f(o)` of an object, before any bonus points.
    fn base_score(&self, object: &DataObject) -> f64;

    /// A short human-readable description of the ranking function, used in
    /// explanations shown to stakeholders.
    fn describe(&self) -> String {
        "score-based ranking function".to_string()
    }
}

impl<T: Ranker + ?Sized> Ranker for &T {
    fn base_score(&self, object: &DataObject) -> f64 {
        (**self).base_score(object)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<T: Ranker + ?Sized> Ranker for Box<T> {
    fn base_score(&self, object: &DataObject) -> f64 {
        (**self).base_score(object)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Compute the effective (bonus-adjusted) scores of every object in a view:
/// `f_b(o) = f(o) + A_f · B` for each object, in view order.
///
/// # Panics
/// Panics if `bonus.len()` differs from the view's fairness dimensionality.
#[must_use]
pub fn effective_scores<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    bonus: &[f64],
) -> Vec<f64> {
    assert_eq!(
        bonus.len(),
        view.schema().num_fairness(),
        "bonus vector dimensionality mismatch"
    );
    view.iter()
        .map(|o| ranker.base_score(o) + o.bonus_increment(bonus))
        .collect()
}

/// Compute base (unadjusted) scores of every object in a view, in view order.
#[must_use]
pub fn base_scores<R: Ranker + ?Sized>(view: &SampleView<'_>, ranker: &R) -> Vec<f64> {
    view.iter().map(|o| ranker.base_score(o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;

    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["gpa"], &["li"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![1.0], vec![1.0], None),
            DataObject::new_unchecked(1, vec![2.0], vec![0.0], None),
        ];
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn effective_scores_add_bonus_for_members() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[5.0]);
        assert_eq!(scores, vec![6.0, 2.0]);
        let base = base_scores(&view, &ranker);
        assert_eq!(base, vec![1.0, 2.0]);
    }

    #[test]
    fn ranker_is_object_safe_and_usable_behind_references() {
        let d = dataset();
        let view = d.full_view();
        let ranker: Box<dyn Ranker> = Box::new(WeightedSumRanker::new(vec![2.0]).unwrap());
        let scores = effective_scores(&view, &ranker, &[0.0]);
        assert_eq!(scores, vec![2.0, 4.0]);
        assert!(ranker.describe().contains("weighted"));
        let by_ref: &dyn Ranker = &*ranker;
        assert_eq!(by_ref.base_score(view.object(1)), 4.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_bonus_length_panics() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let _ = effective_scores(&view, &ranker, &[1.0, 2.0]);
    }
}
