//! # fair-core — explainable disparity compensation for score-based rankings
//!
//! This crate implements the data model, fairness metrics and the **Disparity
//! Compensation Algorithm (DCA)** of *Explainable Disparity Compensation for
//! Efficient Fair Ranking* (Gale & Marian, ICDE 2024).
//!
//! The central idea: instead of opaquely re-ranking results or maintaining
//! quota systems, publish **compensatory bonus points** per protected
//! (fairness) attribute. Members of disadvantaged groups have the bonus added
//! to their ranking score; the bonus values themselves are chosen by a
//! sampling-based descent (DCA) so that the **disparity** — the gap between
//! the fairness centroid of the selected top-k% and the fairness centroid of
//! the whole population — is driven to zero.
//!
//! ## Crate layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`attributes`] | schemas: ranking features + binary/continuous fairness attributes |
//! | [`object`], [`dataset`] | the ranked objects, datasets, centroids, sampling |
//! | [`shard`] | sharded column store + the shard-wise parallel evaluation engine |
//! | [`ranking`] | score-based ranking functions and top-k% selection |
//! | [`bonus`] | bonus vectors: polarity, caps, granularity rounding, scaling |
//! | [`calibrate`] | binary-search calibration of the intervention strength (Fig. 2) |
//! | [`explain`] | per-applicant score breakdowns and threshold-margin explanations |
//! | [`metrics`] | Disparity, log-discounted disparity, disparate impact, FPR difference, exposure/DDP, nDCG |
//! | [`dca`] | Core DCA, the Adam refinement step, Full DCA, and the [`dca::Dca`] facade |
//! | [`fault`] | deterministic fault injection (`FAIR_FAULT`) for robustness testing |
//! | [`kernel`] | chunked f64x4 scoring/centroid kernels + the `FAIR_KERNEL` dispatch |
//! | [`obs`] | metrics registry (counters/gauges/histograms, Prometheus exposition) + `FAIR_LOG` structured tracing |
//! | [`error`] | [`error::FairError`] and the crate-wide [`error::Result`] alias |
//!
//! ## Quick example
//!
//! ```
//! use fair_core::prelude::*;
//! use rand::{Rng, SeedableRng};
//!
//! // Build a small biased population.
//! let schema = Schema::from_names(&["score"], &["low_income"], &[]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let objects: Vec<_> = (0..1500u64)
//!     .map(|i| {
//!         let li = rng.gen::<f64>() < 0.4;
//!         let score = rng.gen::<f64>() * 100.0 - if li { 10.0 } else { 0.0 };
//!         DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(li))], None)
//!     })
//!     .collect();
//! let dataset = Dataset::new(schema, objects).unwrap();
//!
//! // Rank by the single score feature and compensate the top-10% selection.
//! let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
//! let config = DcaConfig { sample_size: 150, iterations_per_rate: 25,
//!                          refinement_iterations: 25, rolling_window: 25,
//!                          learning_rates: vec![10.0, 1.0], ..DcaConfig::default() };
//! let result = Dca::new(config).run(&dataset, &ranker, &TopKDisparity::new(0.1)).unwrap();
//!
//! println!("{}", result.bonus.explain());
//! assert!(result.report.disparity_after.norm() <= result.report.disparity_before.norm());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod attributes;
pub mod bonus;
pub mod calibrate;
pub mod dataset;
pub mod dca;
pub mod error;
pub mod explain;
pub mod fault;
pub mod kernel;
pub mod metrics;
pub mod object;
pub mod obs;
pub mod parallel;
pub mod ranking;
pub mod shard;

pub use attributes::{FairnessAttribute, FairnessKind, Schema, SchemaRef};
pub use bonus::{BonusCaps, BonusPolarity, BonusVector};
pub use calibrate::{calibrate_proportion, CalibrationResult, CalibrationTarget};
pub use dataset::{Dataset, SampleView};
pub use dca::{Dca, DcaConfig, DcaReport, DcaResult, DcaScratch, EvalScratch};
pub use error::{FairError, Result};
pub use fault::{FaultMode, FaultPlan};
pub use kernel::Kernel;
pub use object::{DataObject, ObjectId, ObjectView};
pub use parallel::{max_workers, parallel_map};
pub use shard::{
    default_shard_size, for_each_shard_run, sample_indices_range_into, shard_seed, ShardSource,
    ShardView, ShardedDataset,
};

/// Convenient glob import for applications and examples.
pub mod prelude {
    pub use crate::attributes::{FairnessAttribute, FairnessKind, Schema, SchemaRef};
    pub use crate::bonus::{BonusCaps, BonusPolarity, BonusVector};
    pub use crate::calibrate::{calibrate_proportion, CalibrationResult, CalibrationTarget};
    pub use crate::dataset::{Dataset, SampleView};
    pub use crate::dca::{
        run_core_dca, run_core_dca_sharded, run_core_dca_sharded_controlled, run_core_dca_with,
        run_full_dca, run_full_dca_sharded, run_full_dca_sharded_controlled, run_full_dca_with,
        run_refinement, run_refinement_with, step_duration_hook, Dca, DcaConfig, DcaProgress,
        DcaReport, DcaResult, DcaScratch, EvalScratch, FprDifferenceObjective,
        LogDiscountedObjective, Objective, RunControl, ScaledDisparateImpact, ShardedObjective,
        TopKDisparity,
    };
    pub use crate::error::{FairError, Result};
    pub use crate::explain::{
        score_breakdown, selection_outcome, selection_outcome_sharded, OutcomeExplanation,
        ScoreBreakdown,
    };
    pub use crate::metrics::{
        ddp_for_binary_attributes, disparate_impact_at_k, disparity_at_k, exposure_of_group,
        fpr_difference_at_k, group_fpr_at_k, log_discounted_disparity, ndcg_at_k, norm,
        DisparityVector, LogDiscountConfig,
    };
    pub use crate::object::{DataObject, ObjectId, ObjectView};
    pub use crate::parallel::{max_workers, parallel_map};
    pub use crate::ranking::{
        base_scores, base_scores_into, effective_scores, effective_scores_into, selection_size,
        NormalizedWeightedSum, RankedSelection, Ranker, SingleFeatureRanker, WeightedSumRanker,
    };
    pub use crate::shard::{
        default_shard_size, shard_seed, ShardSource, ShardView, ShardedDataset,
    };
}
