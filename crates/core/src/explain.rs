//! Per-applicant explanations of scores and selection outcomes.
//!
//! Explainability is the central argument of the paper: applicants should be
//! able to see, before applying, exactly how their score is computed, which
//! compensatory adjustments apply to them, and how far they are from the
//! published admission threshold ("predictability … applicants can easily
//! assess their chances and be provided with clarity as to which actions or
//! interventions are required for selection").
//!
//! * [`score_breakdown`] decomposes a weighted-sum rubric score into
//!   per-feature contributions plus per-fairness-attribute bonus
//!   contributions;
//! * [`selection_outcome`] reports an object's rank, the selection threshold
//!   at a given `k`, and the score margin to that threshold.

use crate::bonus::BonusVector;
use crate::dataset::SampleView;
use crate::error::{FairError, Result};
use crate::object::{ObjectId, ObjectView};
use crate::ranking::score::WeightedSumRanker;
use crate::ranking::topk::RankedSelection;
use crate::ranking::{effective_scores, Ranker};
use std::fmt;

/// A decomposed score: base rubric contributions plus bonus contributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBreakdown {
    /// The object being explained.
    pub object_id: ObjectId,
    /// `(feature name, weight, value, contribution)` per ranking feature.
    pub feature_contributions: Vec<(String, f64, f64, f64)>,
    /// `(fairness attribute, bonus, attribute value, contribution)` per
    /// fairness attribute with a non-zero contribution.
    pub bonus_contributions: Vec<(String, f64, f64, f64)>,
    /// The base rubric score (sum of feature contributions).
    pub base_score: f64,
    /// The total bonus added (sum of bonus contributions).
    pub total_bonus: f64,
    /// The effective score used for ranking (`base_score + total_bonus`).
    pub effective_score: f64,
}

impl fmt::Display for ScoreBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Score breakdown for object {}", self.object_id)?;
        for (name, weight, value, contribution) in &self.feature_contributions {
            writeln!(
                f,
                "  {name:<14} {weight:>6.2} x {value:>7.2} = {contribution:>8.2}"
            )?;
        }
        writeln!(f, "  {:<14} {:>27.2}", "base score", self.base_score)?;
        for (name, bonus, value, contribution) in &self.bonus_contributions {
            writeln!(
                f,
                "  {name:<14} {bonus:>+6.2} x {value:>7.2} = {contribution:>8.2}"
            )?;
        }
        writeln!(f, "  {:<14} {:>27.2}", "total bonus", self.total_bonus)?;
        write!(f, "  {:<14} {:>27.2}", "effective", self.effective_score)
    }
}

/// Decompose the effective score of `object` under a weighted-sum rubric and
/// a bonus vector.
///
/// # Errors
/// Returns an error if the rubric weights or the bonus vector do not match
/// the schema.
pub fn score_breakdown(
    schema: &crate::attributes::SchemaRef,
    rubric: &WeightedSumRanker,
    bonus: &BonusVector,
    object: ObjectView<'_>,
) -> Result<ScoreBreakdown> {
    if rubric.weights().len() != schema.num_features() {
        return Err(FairError::DimensionMismatch {
            what: "rubric weights",
            expected: schema.num_features(),
            actual: rubric.weights().len(),
        });
    }
    if bonus.dims() != schema.num_fairness() {
        return Err(FairError::DimensionMismatch {
            what: "bonus vector",
            expected: schema.num_fairness(),
            actual: bonus.dims(),
        });
    }
    if object.features().len() != schema.num_features()
        || object.fairness().len() != schema.num_fairness()
    {
        return Err(FairError::DimensionMismatch {
            what: "object",
            expected: schema.num_features(),
            actual: object.features().len(),
        });
    }

    let feature_contributions: Vec<(String, f64, f64, f64)> = schema
        .features()
        .iter()
        .zip(rubric.weights())
        .zip(object.features())
        .map(|((name, &w), &v)| (name.clone(), w, v, w * v))
        .collect();
    let base_score: f64 = feature_contributions.iter().map(|(_, _, _, c)| c).sum();

    let bonus_contributions: Vec<(String, f64, f64, f64)> = schema
        .fairness()
        .iter()
        .zip(bonus.values())
        .zip(object.fairness())
        .filter(|((_, &b), &v)| b != 0.0 && v != 0.0)
        .map(|((attr, &b), &v)| (attr.name().to_string(), b, v, b * v))
        .collect();
    let total_bonus: f64 = bonus_contributions.iter().map(|(_, _, _, c)| c).sum();

    Ok(ScoreBreakdown {
        object_id: object.id(),
        feature_contributions,
        bonus_contributions,
        base_score,
        total_bonus,
        effective_score: base_score + total_bonus,
    })
}

/// The outcome of a top-k selection for one object, explained.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeExplanation {
    /// The object being explained.
    pub object_id: ObjectId,
    /// 0-based rank of the object under the bonus-adjusted ranking.
    pub rank: usize,
    /// Number of objects selected at the requested `k`.
    pub selection_count: usize,
    /// Whether the object is selected.
    pub selected: bool,
    /// The object's effective score.
    pub effective_score: f64,
    /// The effective score of the last selected object (the published
    /// threshold).
    pub threshold: f64,
    /// `effective_score − threshold`: positive means safely selected,
    /// negative means how many points short the object is.
    pub margin: f64,
}

impl fmt::Display for OutcomeExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "object {}: rank {} of {} selected ({}), score {:.2} vs threshold {:.2} (margin {:+.2})",
            self.object_id,
            self.rank + 1,
            self.selection_count,
            if self.selected { "selected" } else { "not selected" },
            self.effective_score,
            self.threshold,
            self.margin
        )
    }
}

/// Explain the selection outcome of the object at `view_position` under the
/// given ranker, bonus vector and selection fraction.
///
/// # Errors
/// Returns an error on an empty view, an invalid `k`, or an out-of-range
/// position.
pub fn selection_outcome<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    bonus: &BonusVector,
    k: f64,
    view_position: usize,
) -> Result<OutcomeExplanation> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if view_position >= view.len() {
        return Err(FairError::InvalidConfig {
            reason: format!(
                "view position {view_position} out of range ({} objects)",
                view.len()
            ),
        });
    }
    let ranking = RankedSelection::from_scores(effective_scores(view, ranker, bonus.values()));
    let selected_positions = ranking.selected(k)?;
    let selection_count = selected_positions.len();
    let rank = ranking
        .rank_of(view_position)
        .expect("position exists in its own ranking");
    let threshold = ranking
        .threshold_score(k)?
        .expect("non-empty view has a threshold");
    let effective_score = ranking.score_of(view_position);
    Ok(OutcomeExplanation {
        object_id: view.object(view_position).id(),
        rank,
        selection_count,
        selected: rank < selection_count,
        effective_score,
        threshold,
        margin: effective_score - threshold,
    })
}

/// Explain the selection outcome of the row at `global_position` of a
/// sharded cohort — the shard-wise counterpart of [`selection_outcome`].
///
/// Scoring runs per shard, the rank is an exact per-shard count of
/// better-ordered rows, and the threshold comes from the merged top-`k`
/// selection, so every reported number is bit-for-bit what the serial path
/// reports on the flattened cohort.
///
/// # Errors
/// Returns an error on an empty dataset, an invalid `k`, or an out-of-range
/// position.
pub fn selection_outcome_sharded<S: crate::shard::ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &BonusVector,
    k: f64,
    global_position: usize,
) -> Result<OutcomeExplanation> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if global_position >= data.len() {
        return Err(FairError::InvalidConfig {
            reason: format!(
                "row {global_position} out of range ({} objects)",
                data.len()
            ),
        });
    }
    let scores = crate::ranking::sharded::effective_scores(data, ranker, bonus.values());
    let selected = crate::ranking::sharded::selected_at_k(data, &scores, k)?;
    let selection_count = selected.len();
    let rank = crate::ranking::sharded::rank_of(data, &scores, global_position);
    let threshold = selected
        .last()
        .map(|&p| scores[p])
        .expect("non-empty selection has a threshold");
    let effective_score = scores[global_position];
    Ok(OutcomeExplanation {
        object_id: data.with_row(global_position, |r| r.id()),
        rank,
        selection_count,
        selected: rank < selection_count,
        effective_score,
        threshold,
        margin: effective_score - threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::bonus::BonusPolarity;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::shard::ShardedDataset;

    fn setup() -> (Dataset, WeightedSumRanker, BonusVector) {
        let schema = Schema::from_names(&["gpa", "test"], &["low_income", "ell"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![90.0, 80.0], vec![0.0, 0.0], None),
            DataObject::new_unchecked(1, vec![70.0, 60.0], vec![1.0, 1.0], None),
            DataObject::new_unchecked(2, vec![85.0, 75.0], vec![1.0, 0.0], None),
            DataObject::new_unchecked(3, vec![50.0, 40.0], vec![0.0, 1.0], None),
        ];
        let dataset = Dataset::new(schema.clone(), objects).unwrap();
        let rubric = WeightedSumRanker::new(vec![0.55, 0.45]).unwrap();
        let bonus = BonusVector::from_named(
            schema,
            &[("low_income", 2.0), ("ell", 20.0)],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        (dataset, rubric, bonus)
    }

    #[test]
    fn breakdown_sums_match_the_effective_score() {
        let (dataset, rubric, bonus) = setup();
        let schema = dataset.schema();
        let object = dataset.row(1);
        let b = score_breakdown(schema, &rubric, &bonus, object).unwrap();
        // 0.55*70 + 0.45*60 = 38.5 + 27 = 65.5; bonus = 2 + 20 = 22.
        assert!((b.base_score - 65.5).abs() < 1e-9);
        assert!((b.total_bonus - 22.0).abs() < 1e-9);
        assert!((b.effective_score - 87.5).abs() < 1e-9);
        assert_eq!(b.feature_contributions.len(), 2);
        assert_eq!(b.bonus_contributions.len(), 2);
        let text = b.to_string();
        assert!(text.contains("gpa") && text.contains("low_income") && text.contains("effective"));
    }

    #[test]
    fn breakdown_omits_zero_contributions() {
        let (dataset, rubric, bonus) = setup();
        let schema = dataset.schema();
        // Object 0 belongs to no protected group.
        let b = score_breakdown(schema, &rubric, &bonus, dataset.row(0)).unwrap();
        assert!(b.bonus_contributions.is_empty());
        assert_eq!(b.total_bonus, 0.0);
    }

    #[test]
    fn outcome_explanations_report_threshold_margins() {
        let (dataset, rubric, bonus) = setup();
        let view = dataset.full_view();
        // Select the top half (2 of 4).
        let out0 = selection_outcome(&view, &rubric, &bonus, 0.5, 0).unwrap();
        let out1 = selection_outcome(&view, &rubric, &bonus, 0.5, 1).unwrap();
        let out3 = selection_outcome(&view, &rubric, &bonus, 0.5, 3).unwrap();
        assert!(out0.selected);
        assert!(
            out1.selected,
            "the double bonus lifts object 1 into the top half: {out1}"
        );
        assert!(!out3.selected);
        assert!(out3.margin < 0.0);
        assert!(out0.margin >= 0.0);
        assert_eq!(out0.selection_count, 2);
        assert!(out3.to_string().contains("not selected"));
        // Threshold equals the effective score of the last selected object.
        assert!((out1.threshold - out0.threshold).abs() < 1e-12);
    }

    #[test]
    fn zero_bonus_outcome_matches_the_raw_rubric_order() {
        let (dataset, rubric, _) = setup();
        let zero = BonusVector::zeros(dataset.schema().clone());
        let view = dataset.full_view();
        let out2 = selection_outcome(&view, &rubric, &zero, 0.5, 2).unwrap();
        assert!(out2.selected, "object 2 has the second-best raw score");
        let out1 = selection_outcome(&view, &rubric, &zero, 0.5, 1).unwrap();
        assert!(!out1.selected);
    }

    #[test]
    fn sharded_outcome_matches_serial_bitwise() {
        let (dataset, rubric, bonus) = setup();
        let view = dataset.full_view();
        for shard_size in [1, 3, 4, 100] {
            let data = ShardedDataset::from_dataset(&dataset, shard_size).unwrap();
            for pos in 0..dataset.len() {
                let serial = selection_outcome(&view, &rubric, &bonus, 0.5, pos).unwrap();
                let sharded = selection_outcome_sharded(&data, &rubric, &bonus, 0.5, pos).unwrap();
                assert_eq!(serial, sharded, "shard {shard_size} pos {pos}");
            }
        }
    }

    #[test]
    fn sharded_outcome_rejects_bad_inputs() {
        let (dataset, rubric, bonus) = setup();
        let data = ShardedDataset::from_dataset(&dataset, 2).unwrap();
        assert!(selection_outcome_sharded(&data, &rubric, &bonus, 0.5, 99).is_err());
        assert!(selection_outcome_sharded(&data, &rubric, &bonus, 0.0, 0).is_err());
        let empty = ShardedDataset::with_shard_size(dataset.schema().clone(), 2).unwrap();
        assert!(selection_outcome_sharded(&empty, &rubric, &bonus, 0.5, 0).is_err());
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let (dataset, rubric, bonus) = setup();
        let other_schema = Schema::from_names(&["x"], &["g"], &[]).unwrap();
        let wrong_bonus = BonusVector::zeros(other_schema.clone());
        assert!(score_breakdown(dataset.schema(), &rubric, &wrong_bonus, dataset.row(0)).is_err());
        let wrong_rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        assert!(score_breakdown(dataset.schema(), &wrong_rubric, &bonus, dataset.row(0)).is_err());
        let view = dataset.full_view();
        assert!(selection_outcome(&view, &rubric, &bonus, 0.5, 99).is_err());
        assert!(selection_outcome(&view, &rubric, &bonus, 0.0, 0).is_err());
    }
}
