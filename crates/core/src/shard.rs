//! Sharded column store: the cohort split into fixed-size contiguous blocks.
//!
//! The shard is the unit of parallelism, of streaming ingest, of out-of-core
//! residency, and — eventually — of distributed placement. Two storage
//! backends provide shards today:
//!
//! * [`ShardedDataset`] (this module) holds every shard in RAM, each a
//!   self-contained [`Dataset`] (the same contiguous structure-of-arrays
//!   block the single-dataset path uses);
//! * `fair_store::ShardStore` (the `fair-store` crate) pages shards in from
//!   an on-disk columnar file through a byte-budgeted LRU cache.
//!
//! Both implement the [`ShardSource`] trait, which carries the shard-wise
//! **evaluation engine**: every metric, ranking kernel and DCA driver written
//! against `ShardSource` runs unchanged over in-RAM and out-of-core cohorts.
//!
//! ```text
//!   ShardSource (ShardedDataset | fair_store::ShardStore)
//!   ├── shard 0   rows [0, S)        ──┐
//!   ├── shard 1   rows [S, 2S)         │  map: per-shard kernel
//!   ├── …                              │  (parallel_map workers)
//!   └── shard m   rows [mS, n)       ──┘
//!                       │
//!                       ▼
//!          ordered reduce (shard 0, 1, …, m)  →  deterministic result
//! ```
//!
//! The engine methods ([`ShardSource::map_shards`],
//! [`ShardSource::reduce_shards`], [`ShardSource::for_each_shard`]) run one
//! closure per shard on [`crate::parallel_map`]'s scoped worker pool and
//! always combine results **in shard order**, so evaluation is deterministic
//! for a fixed shard size regardless of worker count, scheduling, or storage
//! backend. Metrics written against this engine (see
//! [`crate::metrics::sharded`]) are therefore parallel by construction —
//! parallelism is a property of the engine, not of each metric.
//!
//! ## Determinism and floating point
//!
//! Per-row computations (scoring) and integer reductions (group counts,
//! selection masks) are bit-for-bit identical to the serial single-`Dataset`
//! path for every shard size. Floating-point *sum* reductions (fairness
//! centroids) accumulate per shard and then combine partial sums in shard
//! order; for values on a dyadic grid — binary group indicators, and any
//! value set whose sums are exactly representable — this is bit-for-bit
//! identical to the serial left-to-right sum for every shard size. For
//! arbitrary continuous values the result is deterministic per shard size and
//! differs from the serial sum only by the usual reassociation ulps. Because
//! a paged shard decodes to exactly the bytes that were written, evaluation
//! over a `ShardStore` is bit-for-bit the in-memory evaluation at the same
//! shard size.

use crate::attributes::SchemaRef;
use crate::dataset::Dataset;
use crate::error::{FairError, Result};
use crate::object::{DataObject, ObjectView};
use crate::parallel::parallel_map;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The built-in default shard size (rows per shard) when the
/// `FAIR_SHARD_SIZE` environment variable is not set.
pub const DEFAULT_SHARD_SIZE: usize = 64 * 1024;

/// The default number of rows per shard: the `FAIR_SHARD_SIZE` environment
/// variable when set to a positive integer, [`DEFAULT_SHARD_SIZE`] otherwise.
///
/// CI exercises the suite with `FAIR_SHARD_SIZE=7` so the non-divisible
/// final-shard path is covered on every push.
#[must_use]
pub fn default_shard_size() -> usize {
    std::env::var("FAIR_SHARD_SIZE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_SHARD_SIZE)
}

/// A borrowed view of one shard: its index, the global row offset of its
/// first row, and the underlying contiguous [`Dataset`] block.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    index: usize,
    offset: usize,
    data: &'a Dataset,
}

impl<'a> ShardView<'a> {
    /// Assemble a shard view from its parts — the constructor storage
    /// backends ([`ShardSource::with_shard`] implementations) use to present
    /// a decoded block to the engine.
    #[must_use]
    pub fn new(index: usize, offset: usize, data: &'a Dataset) -> Self {
        Self {
            index,
            offset,
            data,
        }
    }

    /// Position of this shard within the sharded dataset.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Global row index of this shard's first row.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The shard's rows as a contiguous columnar [`Dataset`] block.
    #[must_use]
    pub fn data(&self) -> &'a Dataset {
        self.data
    }

    /// Number of rows in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Global row index of the shard-local row `local`.
    #[must_use]
    pub fn global_index(&self, local: usize) -> usize {
        self.offset + local
    }
}

/// A cohort that can present itself one shard at a time — the storage
/// abstraction the shard-wise evaluation engine runs on.
///
/// A source describes a fixed shard layout (`len` rows cut into
/// `num_shards` blocks of `shard_size`, the last possibly short) and lends
/// out one decoded shard per [`ShardSource::with_shard`] call. In-memory
/// sources ([`ShardedDataset`]) lend a borrow at zero cost; out-of-core
/// sources (`fair_store::ShardStore`) page the shard in on a cache miss and
/// **pin it for the duration of the closure**, so a kernel can never observe
/// a shard being evicted under it.
///
/// Everything else — the parallel engine, whole-cohort statistics, and the
/// per-shard stratified sampler — is provided on top of those five methods,
/// which is what makes the evaluation layer storage-agnostic: the same
/// kernels drive in-RAM and beyond-RAM cohorts unchanged.
pub trait ShardSource: Sync {
    /// The shared schema.
    fn schema(&self) -> &SchemaRef;

    /// Total number of rows across all shards.
    fn len(&self) -> usize;

    /// The configured rows-per-shard (every shard but the last holds exactly
    /// this many rows).
    fn shard_size(&self) -> usize;

    /// Number of shards.
    fn num_shards(&self) -> usize;

    /// Lend shard `index` to `f`, returning `f`'s result. The shard stays
    /// valid (and, for caching backends, pinned) for the whole call.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds. Storage backends also panic when
    /// the shard cannot be produced at all (I/O failure, corruption detected
    /// by a checksum); recoverable validation belongs to the backend's own
    /// fallible API (e.g. `ShardStore::read_shard`).
    fn with_shard<T>(&self, index: usize, f: impl FnOnce(ShardView<'_>) -> T) -> T;

    /// Whether [`Self::with_shard`] may be expensive to repeat — an
    /// out-of-core source that reads and decodes shards from storage (and may
    /// evict them again under a cache budget). Metric plans consult this to
    /// choose between re-walking shards, which is free for in-memory sources,
    /// and retaining the few columns their measurement phase needs during the
    /// scoring sweep so the storage layer pages each shard exactly once. The
    /// choice never changes results — both strategies are bit-identical.
    fn paged(&self) -> bool {
        false
    }

    // ------------------------------------------------------------------
    // Shard layout arithmetic.
    // ------------------------------------------------------------------

    /// Whether the source holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global row index of shard `index`'s first row.
    fn shard_offset(&self, index: usize) -> usize {
        index * self.shard_size()
    }

    /// Number of rows in shard `index` — pure layout arithmetic, no shard is
    /// paged in.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    fn shard_len(&self, index: usize) -> usize {
        assert!(
            index < self.num_shards(),
            "shard {index} out of bounds ({})",
            self.num_shards()
        );
        (self.len() - self.shard_offset(index)).min(self.shard_size())
    }

    /// Split a global row index into `(shard index, shard-local row index)`.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    fn locate(&self, global: usize) -> (usize, usize) {
        assert!(
            global < self.len(),
            "row {global} out of bounds ({})",
            self.len()
        );
        (global / self.shard_size(), global % self.shard_size())
    }

    /// Lend the row at `global` index (insertion order) to `f`. Pages in the
    /// owning shard on caching backends; zero-copy on in-memory ones.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    fn with_row<T>(&self, global: usize, f: impl FnOnce(ObjectView<'_>) -> T) -> T {
        let (shard, local) = self.locate(global);
        self.with_shard(shard, |s| f(s.data().row(local)))
    }

    /// Lend the fairness row at `global` index to `f`.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    fn with_fairness_row<T>(&self, global: usize, f: impl FnOnce(&[f64]) -> T) -> T {
        let (shard, local) = self.locate(global);
        self.with_shard(shard, |s| f(s.data().fairness_row(local)))
    }

    // ------------------------------------------------------------------
    // The shard-wise evaluation engine.
    // ------------------------------------------------------------------

    /// Apply `f` to every shard on the scoped worker pool, returning the
    /// per-shard results **in shard order**.
    fn map_shards<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ShardView<'_>) -> T + Sync,
    {
        let indices: Vec<usize> = (0..self.num_shards()).collect();
        parallel_map(&indices, |&i| self.with_shard(i, &f))
    }

    /// Run `f` on every shard (parallel, no results collected).
    fn for_each_shard<F>(&self, f: F)
    where
        F: Fn(ShardView<'_>) + Sync,
    {
        self.map_shards(&f);
    }

    /// Map every shard in parallel, then fold the per-shard results **in
    /// shard order** — the deterministic reduction every sharded metric is
    /// built on.
    fn reduce_shards<T, A, F, G>(&self, init: A, map: F, mut fold: G) -> A
    where
        T: Send,
        F: Fn(ShardView<'_>) -> T + Sync,
        G: FnMut(A, T) -> A,
    {
        self.map_shards(map).into_iter().fold(init, &mut fold)
    }

    // ------------------------------------------------------------------
    // Whole-cohort primitives built on the engine.
    // ------------------------------------------------------------------

    /// Fairness centroid over the whole cohort (`D_O` of Definition 3):
    /// per-shard sums combined in shard order, then divided once.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset.
    fn fairness_centroid(&self) -> Result<Vec<f64>> {
        if self.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let dims = self.schema().num_fairness();
        if dims == 0 {
            return Ok(Vec::new());
        }
        let sums = self.reduce_shards(
            vec![0.0_f64; dims],
            |shard| {
                let mut acc = Vec::new();
                crate::kernel::col_sums_into(shard.data().fairness_matrix(), dims, &mut acc);
                acc
            },
            |mut acc, partial| {
                crate::kernel::add_row(&mut acc, &partial);
                acc
            },
        );
        Ok(sums.into_iter().map(|s| s / self.len() as f64).collect())
    }

    /// Fraction of rows belonging to the (binary) group at fairness index
    /// `dim` (value `>= 0.5`). Integer count reduction — exact for every
    /// shard size.
    fn group_frequency(&self, dim: usize) -> f64 {
        if self.is_empty() || dim >= self.schema().num_fairness() {
            return 0.0;
        }
        let dims = self.schema().num_fairness();
        let count = self.reduce_shards(
            0_usize,
            |shard| crate::kernel::count_ge_half(shard.data().fairness_matrix(), dims, dim),
            |acc, c| acc + c,
        );
        count as f64 / self.len() as f64
    }

    /// Frequency of the rarest non-empty fairness group — the `r` of the
    /// paper's sample-size rule.
    fn rarest_group_frequency(&self) -> f64 {
        (0..self.schema().num_fairness())
            .map(|d| self.group_frequency(d))
            .filter(|f| *f > 0.0)
            .fold(1.0_f64, f64::min)
    }

    /// Whether every row carries a ground-truth label.
    fn fully_labelled(&self) -> bool {
        !self.is_empty()
            && self.reduce_shards(
                true,
                |shard| shard.data().fully_labelled(),
                |acc, ok| acc && ok,
            )
    }

    // ------------------------------------------------------------------
    // Per-shard sampling (the distributed-DCA building block).
    // ------------------------------------------------------------------

    /// Draw a uniform-rate stratified sample of `size` rows: each shard
    /// contributes a quota proportional to its length (largest-remainder
    /// apportionment, deterministic), sampled **within the shard** with its
    /// own RNG stream split off `seed` — so shards can sample independently
    /// and in parallel, and a distributed deployment draws the identical
    /// sample without any cross-shard coordination.
    ///
    /// Only the shard *layout* is consulted — no shard data is paged in —
    /// so sampling an out-of-core cohort touches the disk not at all; the
    /// caller gathers exactly the sampled rows afterwards.
    ///
    /// Returns global row indices grouped by shard (ascending shard order,
    /// selection order within a shard). When `size >= len()` every row is
    /// returned in global order.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset and
    /// [`FairError::InvalidConfig`] when `size == 0`.
    fn sample_indices_into(&self, seed: u64, size: usize, out: &mut Vec<usize>) -> Result<()> {
        if self.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        if size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "sample size must be positive".into(),
            });
        }
        out.clear();
        if size >= self.len() {
            out.extend(0..self.len());
            return Ok(());
        }
        let quotas = shard_quotas(self, size);
        let indices: Vec<usize> = (0..self.num_shards()).collect();
        let per_shard: Vec<Vec<usize>> = parallel_map(&indices, |&i| {
            let quota = quotas[i];
            if quota == 0 {
                return Vec::new();
            }
            let len = self.shard_len(i);
            let mut rng = StdRng::seed_from_u64(shard_seed(seed, i));
            let mut buf = rand::seq::index::IndexBuffer::new();
            if quota >= len {
                buf.fill_sequential(len);
            } else {
                rand::seq::index::sample_into(&mut rng, len, quota, &mut buf);
            }
            let offset = self.shard_offset(i);
            buf.as_slice().iter().map(|&x| offset + x).collect()
        });
        for indices in per_shard {
            out.extend(indices);
        }
        Ok(())
    }
}

/// Visit each shard that appears in `items` exactly once, handing `f` the
/// shard view and the contiguous run of items that live in it. `items` must
/// already be grouped by shard (`shard_of` constant within a run) — the
/// natural order of sample indices and of position lists sorted by shard.
/// This is the access pattern caching out-of-core sources want: one page-in
/// per shard instead of one per item.
pub fn for_each_shard_run<S, T>(
    data: &S,
    items: &[T],
    shard_of: impl Fn(&T) -> usize,
    mut f: impl FnMut(ShardView<'_>, &[T]),
) where
    S: ShardSource + ?Sized,
{
    let mut start = 0;
    while start < items.len() {
        let shard = shard_of(&items[start]);
        let mut end = start + 1;
        while end < items.len() && shard_of(&items[end]) == shard {
            end += 1;
        }
        data.with_shard(shard, |view| f(view, &items[start..end]));
        start = end;
    }
}

/// Largest-remainder apportionment of `size` sample slots across shards,
/// proportional to shard lengths; deterministic and clamped to shard
/// lengths. Layout arithmetic only — no shard data is touched.
fn shard_quotas<S: ShardSource + ?Sized>(data: &S, size: usize) -> Vec<usize> {
    let n = data.len() as f64;
    let num_shards = data.num_shards();
    let mut quotas: Vec<usize> = Vec::with_capacity(num_shards);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(num_shards);
    let mut assigned = 0_usize;
    for i in 0..num_shards {
        let len = data.shard_len(i);
        let exact = size as f64 * len as f64 / n;
        let floor = (exact.floor() as usize).min(len);
        quotas.push(floor);
        remainders.push((i, exact - floor as f64));
        assigned += floor;
    }
    // Hand the remaining slots to the largest fractional remainders
    // (ties broken by shard index for determinism), skipping full shards.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut left = size.saturating_sub(assigned);
    let mut cursor = 0;
    while left > 0 {
        let (idx, _) = remainders[cursor % remainders.len()];
        if quotas[idx] < data.shard_len(idx) {
            quotas[idx] += 1;
            left -= 1;
        }
        cursor += 1;
        assert!(
            cursor <= remainders.len() * (size + 1),
            "quota apportionment must terminate"
        );
    }
    quotas
}

/// The shard-range restriction of [`ShardSource::sample_indices_into`]: the
/// global row indices that sampler would emit for the shards in `shards`, in
/// the same order.
///
/// Quotas are apportioned over the **whole** layout and each shard samples
/// under its own [`shard_seed`]-split RNG stream, so a node that owns only
/// `shards` computes its slice of the global sample without seeing any other
/// node's rows — concatenating the outputs of disjoint ranges covering
/// `0..num_shards()` in ascending order reproduces `sample_indices_into`
/// exactly. This is the distributed-DCA sampling primitive.
///
/// # Errors
/// Returns [`FairError::EmptyDataset`] on an empty dataset,
/// [`FairError::InvalidConfig`] when `size == 0` or the range exceeds the
/// layout.
pub fn sample_indices_range_into<S: ShardSource + ?Sized>(
    data: &S,
    seed: u64,
    size: usize,
    shards: std::ops::Range<usize>,
    out: &mut Vec<usize>,
) -> Result<()> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if size == 0 {
        return Err(FairError::InvalidConfig {
            reason: "sample size must be positive".into(),
        });
    }
    if shards.start > shards.end || shards.end > data.num_shards() {
        return Err(FairError::InvalidConfig {
            reason: format!(
                "shard range {}..{} exceeds the {}-shard layout",
                shards.start,
                shards.end,
                data.num_shards()
            ),
        });
    }
    out.clear();
    if size >= data.len() {
        // The full-cohort branch of `sample_indices_into` emits every global
        // index in order; this range's slice of that is its own row span.
        for i in shards {
            let offset = data.shard_offset(i);
            out.extend(offset..offset + data.shard_len(i));
        }
        return Ok(());
    }
    let quotas = shard_quotas(data, size);
    let indices: Vec<usize> = shards.collect();
    let per_shard: Vec<Vec<usize>> = parallel_map(&indices, |&i| {
        let quota = quotas[i];
        if quota == 0 {
            return Vec::new();
        }
        let len = data.shard_len(i);
        let mut rng = StdRng::seed_from_u64(shard_seed(seed, i));
        let mut buf = rand::seq::index::IndexBuffer::new();
        if quota >= len {
            buf.fill_sequential(len);
        } else {
            rand::seq::index::sample_into(&mut rng, len, quota, &mut buf);
        }
        let offset = data.shard_offset(i);
        buf.as_slice().iter().map(|&x| offset + x).collect()
    });
    for indices in per_shard {
        out.extend(indices);
    }
    Ok(())
}

/// A cohort stored as fixed-size shards, each a contiguous columnar block —
/// the in-memory [`ShardSource`].
///
/// All rows except possibly the final shard's hold exactly
/// [`ShardedDataset::shard_size`] rows; the final shard holds the remainder.
/// Global row order is shard order, so flattening the shards
/// ([`ShardedDataset::to_dataset`]) reproduces the original insertion order.
#[derive(Debug, Clone)]
pub struct ShardedDataset {
    schema: SchemaRef,
    shard_size: usize,
    shards: Vec<Dataset>,
    len: usize,
}

impl ShardedDataset {
    /// Create an empty sharded dataset with the given shard size.
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if `shard_size == 0`.
    pub fn with_shard_size(schema: SchemaRef, shard_size: usize) -> Result<Self> {
        if shard_size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "shard size must be positive".into(),
            });
        }
        Ok(Self {
            schema,
            shard_size,
            shards: Vec::new(),
            len: 0,
        })
    }

    /// Create an empty sharded dataset with the environment-resolved
    /// [`default_shard_size`].
    #[must_use]
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_shard_size(schema, default_shard_size())
            .expect("the default shard size is positive")
    }

    /// Build a sharded dataset from owned objects.
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if `shard_size == 0`, or a
    /// dimension error if any object's vectors do not match the schema.
    pub fn from_objects(
        schema: SchemaRef,
        objects: Vec<DataObject>,
        shard_size: usize,
    ) -> Result<Self> {
        let mut this = Self::with_shard_size(schema, shard_size)?;
        for o in objects {
            this.push(o)?;
        }
        Ok(this)
    }

    /// Re-shard an existing contiguous dataset (copies the rows).
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if `shard_size == 0`.
    pub fn from_dataset(dataset: &Dataset, shard_size: usize) -> Result<Self> {
        if shard_size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "shard size must be positive".into(),
            });
        }
        let schema = dataset.schema().clone();
        let n = dataset.len();
        let mut shards = Vec::with_capacity(n.div_ceil(shard_size));
        let mut start = 0;
        while start < n {
            let end = (start + shard_size).min(n);
            let indices: Vec<usize> = (start..end).collect();
            shards.push(dataset.subset(&indices));
            start = end;
        }
        Ok(Self {
            schema,
            shard_size,
            shards,
            len: n,
        })
    }

    /// The shared schema.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The configured rows-per-shard.
    #[must_use]
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total number of rows across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// View of shard `i` — a zero-cost borrow of the resident block.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn shard(&self, i: usize) -> ShardView<'_> {
        ShardView {
            index: i,
            offset: i * self.shard_size,
            data: &self.shards[i],
        }
    }

    /// Iterate over all shards in order.
    pub fn shards(&self) -> impl Iterator<Item = ShardView<'_>> + '_ {
        (0..self.num_shards()).map(move |i| self.shard(i))
    }

    /// Split a global row index into `(shard index, shard-local row index)`.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    #[must_use]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        assert!(
            global < self.len,
            "row {global} out of bounds ({})",
            self.len
        );
        (global / self.shard_size, global % self.shard_size)
    }

    /// Zero-copy view of the row at `global` index (insertion order).
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    #[must_use]
    pub fn row(&self, global: usize) -> ObjectView<'_> {
        let (s, local) = self.locate(global);
        self.shards[s].row(local)
    }

    /// The fairness row at `global` index.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    #[must_use]
    pub fn fairness_row(&self, global: usize) -> &[f64] {
        let (s, local) = self.locate(global);
        self.shards[s].fairness_row(local)
    }

    /// The feature row at `global` index.
    ///
    /// # Panics
    /// Panics if `global` is out of bounds.
    #[must_use]
    pub fn feature_row(&self, global: usize) -> &[f64] {
        let (s, local) = self.locate(global);
        self.shards[s].feature_row(local)
    }

    /// Iterate over all rows in global order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectView<'_>> + '_ {
        self.shards().flat_map(|s| {
            let d = s.data();
            (0..d.len()).map(move |i| d.row(i))
        })
    }

    /// Append a row, opening a new shard when the last one is full.
    ///
    /// # Errors
    /// Returns an error if the object's vectors do not match the schema.
    pub fn push(&mut self, object: DataObject) -> Result<()> {
        // Validate before touching the shard list, so a rejected object can
        // never leave an empty trailing shard behind.
        if object.features().len() != self.schema.num_features() {
            return Err(FairError::DimensionMismatch {
                what: "feature vector",
                expected: self.schema.num_features(),
                actual: object.features().len(),
            });
        }
        if object.fairness().len() != self.schema.num_fairness() {
            return Err(FairError::DimensionMismatch {
                what: "fairness vector",
                expected: self.schema.num_fairness(),
                actual: object.fairness().len(),
            });
        }
        let open = matches!(self.shards.last(), Some(last) if last.len() < self.shard_size);
        if !open {
            self.shards.push(Dataset::with_capacity(
                self.schema.clone(),
                self.shard_size.min(1 << 20),
            ));
        }
        let shard = self.shards.last_mut().expect("a shard was just ensured");
        shard.push(object)?;
        self.len += 1;
        Ok(())
    }

    /// Flatten the shards back into one contiguous [`Dataset`]
    /// (rows in global order). Intended for interop and tests.
    #[must_use]
    pub fn to_dataset(&self) -> Dataset {
        let mut out = Dataset::with_capacity(self.schema.clone(), self.len);
        for view in self.iter() {
            out.push(view.to_object())
                .expect("rows of a sharded dataset match its schema");
        }
        out
    }
}

impl ShardSource for ShardedDataset {
    fn schema(&self) -> &SchemaRef {
        ShardedDataset::schema(self)
    }

    fn len(&self) -> usize {
        ShardedDataset::len(self)
    }

    fn shard_size(&self) -> usize {
        ShardedDataset::shard_size(self)
    }

    fn num_shards(&self) -> usize {
        ShardedDataset::num_shards(self)
    }

    fn with_shard<T>(&self, index: usize, f: impl FnOnce(ShardView<'_>) -> T) -> T {
        f(self.shard(index))
    }
}

/// Derive the RNG seed of shard `index` from the base `seed`: a
/// SplitMix64-style mix so per-shard streams are decorrelated but fully
/// determined by `(seed, index)`.
#[must_use]
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;

    fn schema() -> SchemaRef {
        Schema::from_names(&["score"], &["g"], &[]).unwrap()
    }

    fn objects(n: u64) -> Vec<DataObject> {
        (0..n)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 3 == 0))],
                    Some(i % 2 == 0),
                )
            })
            .collect()
    }

    #[test]
    fn sharding_splits_rows_with_a_short_final_shard() {
        let d = ShardedDataset::from_objects(schema(), objects(23), 7).unwrap();
        assert_eq!(d.len(), 23);
        assert_eq!(d.num_shards(), 4);
        assert_eq!(d.shard(0).len(), 7);
        assert_eq!(d.shard(3).len(), 2, "non-divisible final shard");
        assert_eq!(d.shard(2).offset(), 14);
        assert_eq!(d.shard(1).global_index(3), 10);
        assert!(!d.shard(0).is_empty());
        // Layout arithmetic agrees with the materialized shards.
        assert_eq!(d.shard_len(0), 7);
        assert_eq!(d.shard_len(3), 2);
        assert_eq!(d.shard_offset(2), 14);
    }

    #[test]
    fn global_rows_match_flat_dataset() {
        let objs = objects(23);
        let flat = Dataset::new(schema(), objs.clone()).unwrap();
        let sharded = ShardedDataset::from_objects(schema(), objs, 7).unwrap();
        for i in 0..flat.len() {
            assert_eq!(sharded.row(i), flat.row(i), "row {i}");
            sharded.with_row(i, |r| assert_eq!(r, flat.row(i)));
        }
        assert_eq!(sharded.iter().count(), flat.len());
        let back = sharded.to_dataset();
        assert_eq!(back.len(), flat.len());
        assert_eq!(back.row(22), flat.row(22));
    }

    #[test]
    fn from_dataset_reshards_identically() {
        let flat = Dataset::new(schema(), objects(23)).unwrap();
        let sharded = ShardedDataset::from_dataset(&flat, 5).unwrap();
        assert_eq!(sharded.num_shards(), 5);
        for i in 0..flat.len() {
            assert_eq!(sharded.row(i), flat.row(i));
        }
        assert_eq!(sharded.feature_row(13), flat.feature_row(13));
        assert_eq!(sharded.fairness_row(13), flat.fairness_row(13));
        sharded.with_fairness_row(13, |row| assert_eq!(row, flat.fairness_row(13)));
    }

    #[test]
    fn centroid_matches_serial_for_binary_attributes() {
        let flat = Dataset::new(schema(), objects(23)).unwrap();
        for size in [1, 7, 23, 1000] {
            let sharded = ShardedDataset::from_dataset(&flat, size).unwrap();
            assert_eq!(
                sharded.fairness_centroid().unwrap(),
                flat.fairness_centroid().unwrap(),
                "shard size {size}"
            );
        }
    }

    #[test]
    fn group_stats_match_serial() {
        let flat = Dataset::new(schema(), objects(23)).unwrap();
        let sharded = ShardedDataset::from_dataset(&flat, 4).unwrap();
        assert_eq!(sharded.group_frequency(0), flat.group_frequency(0));
        assert_eq!(sharded.group_frequency(9), 0.0);
        assert_eq!(
            sharded.rarest_group_frequency(),
            flat.rarest_group_frequency()
        );
        assert!(sharded.fully_labelled());
    }

    #[test]
    fn reduce_shards_folds_in_shard_order() {
        let d = ShardedDataset::from_objects(schema(), objects(10), 3).unwrap();
        let order = d.reduce_shards(
            Vec::new(),
            |s| s.index(),
            |mut acc, i| {
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, vec![0, 1, 2, 3]);
        let lens = d.map_shards(|s| s.len());
        assert_eq!(lens, vec![3, 3, 3, 1]);
    }

    #[test]
    fn stratified_sample_is_deterministic_and_in_range() {
        let d = ShardedDataset::from_objects(schema(), objects(100), 9).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        d.sample_indices_into(42, 30, &mut a).unwrap();
        d.sample_indices_into(42, 30, &mut b).unwrap();
        assert_eq!(a, b, "same seed, same sample");
        assert_eq!(a.len(), 30);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "no duplicates");
        assert!(a.iter().all(|&i| i < 100));
        let mut c = Vec::new();
        d.sample_indices_into(43, 30, &mut c).unwrap();
        assert_ne!(a, c, "different seed, different sample");
    }

    #[test]
    fn sample_quotas_are_proportional() {
        let d = ShardedDataset::from_objects(schema(), objects(100), 25).unwrap();
        let mut out = Vec::new();
        d.sample_indices_into(7, 40, &mut out).unwrap();
        // 4 equal shards of 25 rows each must contribute exactly 10 apiece.
        for s in 0..4 {
            let in_shard = out
                .iter()
                .filter(|&&i| i >= s * 25 && i < (s + 1) * 25)
                .count();
            assert_eq!(in_shard, 10, "shard {s}");
        }
    }

    #[test]
    fn range_sampler_slices_concatenate_to_the_global_sample() {
        let d = ShardedDataset::from_objects(schema(), objects(101), 9).unwrap();
        let shards = d.num_shards();
        let mut whole = Vec::new();
        d.sample_indices_into(42, 37, &mut whole).unwrap();
        // Every split of the shard space, including degenerate empty ranges.
        for cut_a in 0..=shards {
            for cut_b in cut_a..=shards {
                let mut concat = Vec::new();
                for range in [0..cut_a, cut_a..cut_b, cut_b..shards] {
                    let mut part = Vec::new();
                    sample_indices_range_into(&d, 42, 37, range, &mut part).unwrap();
                    concat.extend(part);
                }
                assert_eq!(concat, whole, "split at {cut_a}/{cut_b}");
            }
        }
        // The oversized-sample branch slices the same way.
        let mut whole = Vec::new();
        d.sample_indices_into(1, 500, &mut whole).unwrap();
        let mut concat = Vec::new();
        for range in [0..3, 3..shards] {
            let mut part = Vec::new();
            sample_indices_range_into(&d, 1, 500, range, &mut part).unwrap();
            concat.extend(part);
        }
        assert_eq!(concat, whole, "oversized sample");
    }

    #[test]
    fn range_sampler_rejects_bad_ranges_and_inputs() {
        let d = ShardedDataset::from_objects(schema(), objects(20), 4).unwrap();
        let mut out = Vec::new();
        assert!(sample_indices_range_into(&d, 1, 5, 0..99, &mut out).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(sample_indices_range_into(&d, 1, 5, 3..1, &mut out).is_err());
        }
        assert!(sample_indices_range_into(&d, 1, 0, 0..1, &mut out).is_err());
        let empty = ShardedDataset::with_shard_size(schema(), 4).unwrap();
        assert!(matches!(
            sample_indices_range_into(&empty, 1, 5, 0..0, &mut out),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn oversized_sample_returns_every_row() {
        let d = ShardedDataset::from_objects(schema(), objects(10), 3).unwrap();
        let mut out = Vec::new();
        d.sample_indices_into(1, 99, &mut out).unwrap();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_errors_match_dataset_semantics() {
        let empty = ShardedDataset::with_shard_size(schema(), 4).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            empty.sample_indices_into(1, 5, &mut out),
            Err(FairError::EmptyDataset)
        ));
        let d = ShardedDataset::from_objects(schema(), objects(10), 3).unwrap();
        assert!(d.sample_indices_into(1, 0, &mut out).is_err());
        assert!(matches!(
            empty.fairness_centroid(),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn push_validates_and_opens_shards() {
        let mut d = ShardedDataset::with_shard_size(schema(), 2).unwrap();
        for o in objects(5) {
            d.push(o).unwrap();
        }
        assert_eq!(d.num_shards(), 3);
        let bad = DataObject::new_unchecked(9, vec![1.0, 2.0], vec![0.0], None);
        assert!(d.push(bad).is_err());
        assert_eq!(d.len(), 5, "failed push must not change the length");
    }

    #[test]
    fn rejected_push_never_opens_an_empty_trailing_shard() {
        // Fill shards exactly (4 rows, shard size 2), then push a
        // schema-mismatched object: the shard layout must be untouched.
        let mut d = ShardedDataset::from_objects(schema(), objects(4), 2).unwrap();
        assert_eq!(d.num_shards(), 2);
        let bad_features = DataObject::new_unchecked(9, vec![1.0, 2.0], vec![0.0], None);
        assert!(d.push(bad_features).is_err());
        let bad_fairness = DataObject::new_unchecked(9, vec![1.0], vec![0.0, 1.0], None);
        assert!(d.push(bad_fairness).is_err());
        assert_eq!(d.num_shards(), 2, "no empty shard may be opened");
        assert_eq!(d.len(), 4);
        assert!(d.shards().all(|s| !s.is_empty()));
    }

    #[test]
    fn shard_seed_is_stable_and_decorrelated() {
        assert_eq!(shard_seed(7, 3), shard_seed(7, 3));
        assert_ne!(shard_seed(7, 3), shard_seed(7, 4));
        assert_ne!(shard_seed(7, 3), shard_seed(8, 3));
    }

    #[test]
    fn default_shard_size_is_positive() {
        assert!(default_shard_size() > 0);
    }

    #[test]
    fn zero_shard_size_is_a_structured_error() {
        // Regression: every shard-size-taking constructor must reject 0 with
        // FairError::InvalidConfig instead of panicking.
        assert!(matches!(
            ShardedDataset::with_shard_size(schema(), 0),
            Err(FairError::InvalidConfig { .. })
        ));
        let flat = Dataset::new(schema(), objects(5)).unwrap();
        assert!(matches!(
            ShardedDataset::from_dataset(&flat, 0),
            Err(FairError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardedDataset::from_objects(schema(), objects(5), 0),
            Err(FairError::InvalidConfig { .. })
        ));
        let err = ShardedDataset::with_shard_size(schema(), 0).unwrap_err();
        assert!(err.to_string().contains("shard size"), "{err}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        let d = ShardedDataset::from_objects(schema(), objects(5), 2).unwrap();
        let _ = d.row(5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_shard_len_panics() {
        let d = ShardedDataset::from_objects(schema(), objects(5), 2).unwrap();
        let _ = d.shard_len(3);
    }
}
