//! `fair-obs`: the unified observability layer — a process-wide metrics
//! registry with Prometheus text exposition, and span-based structured
//! logging with cross-process trace correlation.
//!
//! Everything here is std-only and falls out of two primitives:
//!
//! * **Metrics** ([`registry`]): atomic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s with exact sum/count and p50/p90/p99
//!   extraction, addressed by `(name, labels)` in one [`global`] registry
//!   that the serve layer renders at `GET /metrics`. Handles are resolved
//!   once and updated lock-free, so instrumentation costs one relaxed
//!   atomic op per event — cheap enough to leave on everywhere (the bench
//!   suite tracks the Core-DCA per-step overhead; it must stay under 5%).
//! * **Logs** ([`log`]): [`Span`]s (one stderr line per close with target,
//!   `duration_us`, fields) and point [`Event`]s, formatted per
//!   `FAIR_LOG=off|text|json`. Trace ids minted by [`next_trace_id`] ride
//!   the `x-fair-trace` header so fleet coordinator retries correlate with
//!   worker-side handler spans.
//! * **Profiles** ([`profile`]): per-job phase attribution — a
//!   [`JobProfile`] of pre-sized atomics carried by a thread-local handle,
//!   with [`PhaseScope`] guards wrapping kernel invocations at the layer
//!   boundaries (paging, decode, score sweeps, sample gathers, partial
//!   combines, worker round trips). Inert unless a profile is installed.
//!
//! Instrumentation never alters computation: kernels stay wall-clock-free
//! and every DCA/metric output is bit-identical with observability on or
//! off. Timing happens at layer boundaries (request dispatch, job step
//! callbacks, cache admits) only.
//!
//! The convenience functions below ([`counter`], [`gauge`], [`histogram`],
//! [`render_prometheus`]) bind to the [`global`] registry, which is what
//! production code should use; private [`Registry`] instances exist for
//! tests.

pub mod log;
pub mod profile;
pub mod registry;

pub use log::{
    capture, captured, log_enabled, log_mode, next_trace_id, set_log_mode, warn, CaptureGuard,
    Event, LogMode, Record, Span,
};
pub use profile::{JobProfile, Phase, PhaseScope, PhaseStats, StepBreakdown, PROFILE_RING};
pub use registry::{
    bucket_index, bucket_upper_bound, global, Counter, Gauge, Histogram, Registry,
    HISTOGRAM_BUCKETS, RESERVOIR_SLOTS,
};

use std::sync::Arc;

/// Get or create a counter in the [`global`] registry.
#[must_use]
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(name, labels)
}

/// Get or create a gauge in the [`global`] registry.
#[must_use]
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(name, labels)
}

/// Get or create a histogram in the [`global`] registry.
#[must_use]
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(name, labels)
}

/// Render the [`global`] registry in Prometheus text exposition format.
#[must_use]
pub fn render_prometheus() -> String {
    global().render_prometheus()
}
