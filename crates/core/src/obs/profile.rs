//! Per-job phase profiler: "where did *this* job's time go".
//!
//! The metrics registry answers "how much / how often" across the process;
//! this module attributes one job's wall-clock to named [`Phase`]s —
//! `page_in` / `decode` / `score` / `sample` / `combine` / `wire` — so a
//! 4.2-second descent can say which of paging, decoding, scoring, sample
//! gathering, partial combining, or the wire dominated it.
//!
//! Mechanics, in the same discipline as the PR 9 step hook:
//!
//! * A [`JobProfile`] is a pre-sized block of atomics (per-phase
//!   total/count/max plus a fixed ring of the last
//!   [`PROFILE_RING`] per-step breakdowns). Recording is a handful of
//!   relaxed atomic ops — no heap traffic on the hot path.
//! * The profile travels via a **thread-local handle**: the job thread
//!   [`install`]s its profile, [`crate::parallel_map`] re-installs it inside
//!   pool workers, and every instrumented layer (`ShardStore` paging, the
//!   sharded runners, the fleet coordinator) opens a [`PhaseScope`] through
//!   [`scope`]. With no profile installed a scope is a single thread-local
//!   check and records nothing — library callers pay nothing.
//! * Scopes nest: an inner scope's time is subtracted from its enclosing
//!   scope on the same thread (self-time attribution), so a `score` scope
//!   that pages a shard in-line does not double-count the `page_in` time.
//!   Scopes on *different* threads are independent: phases recorded by pool
//!   workers (cache misses under a `score` sweep) are concurrent with the
//!   job thread and may sum past wall-clock on parallel paged runs — the
//!   profile reports attributed time, not elapsed time.
//! * Wall-clock stays outside kernels: scopes wrap kernel *invocations*
//!   (a whole gather, a whole shard-sweep evaluate, one decode) and the
//!   clock value never feeds back into any computation, so DCA trajectories
//!   are bit-identical with profiling on — asserted in-test.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of named phases.
pub const NUM_PHASES: usize = 6;

/// Per-step breakdown entries a [`JobProfile`] retains (the last N steps).
pub const PROFILE_RING: usize = 32;

/// A named slice of a job's time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Waiting for a shard to become resident: cache-miss disk reads and
    /// waits on another thread's in-flight decode.
    PageIn = 0,
    /// Decoding shard bytes into columns (CRC checks included).
    Decode = 1,
    /// Objective evaluation: the scoring sweep of a descent step.
    Score = 2,
    /// Gathering the per-step stratified sample (Core DCA only).
    Sample = 3,
    /// Combining distributed partials into one result (fleet only).
    Combine = 4,
    /// Worker round trips: serialize, send, wait, parse — retries included.
    Wire = 5,
}

impl Phase {
    /// Every phase, in canonical (discriminant) order.
    pub const ALL: [Self; NUM_PHASES] = [
        Self::PageIn,
        Self::Decode,
        Self::Score,
        Self::Sample,
        Self::Combine,
        Self::Wire,
    ];

    /// The snake_case name used in JSON and metric labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::PageIn => "page_in",
            Self::Decode => "decode",
            Self::Score => "score",
            Self::Sample => "sample",
            Self::Combine => "combine",
            Self::Wire => "wire",
        }
    }
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Which phase.
    pub phase: Phase,
    /// Attributed self-time, microseconds.
    pub total_us: u64,
    /// Number of scopes that recorded into this phase.
    pub count: u64,
    /// Largest single scope, microseconds.
    pub max_us: u64,
}

/// One descent step's per-phase attribution (deltas between consecutive
/// [`JobProfile::end_step`] calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBreakdown {
    /// The 1-based step counter the deltas belong to.
    pub step: usize,
    /// Microseconds attributed to each phase during the step, indexed by
    /// [`Phase`] discriminant.
    pub phase_us: [u64; NUM_PHASES],
}

#[derive(Debug)]
struct StepRing {
    /// Phase totals at the previous `end_step`, so each entry is a delta.
    last_totals: [u64; NUM_PHASES],
    entries: [StepBreakdown; PROFILE_RING],
    /// Next write position.
    head: usize,
    /// Number of valid entries (saturates at `PROFILE_RING`).
    len: usize,
}

impl Default for StepRing {
    fn default() -> Self {
        Self {
            last_totals: [0; NUM_PHASES],
            entries: [StepBreakdown::default(); PROFILE_RING],
            head: 0,
            len: 0,
        }
    }
}

/// Per-job phase accumulator: pre-sized atomics, shared via `Arc` between
/// the job thread, pool workers, and whoever serves `GET /jobs/{id}/profile`.
#[derive(Debug, Default)]
pub struct JobProfile {
    total_us: [AtomicU64; NUM_PHASES],
    count: [AtomicU64; NUM_PHASES],
    max_us: [AtomicU64; NUM_PHASES],
    ring: Mutex<StepRing>,
}

impl JobProfile {
    /// A fresh all-zero profile behind an `Arc`, ready to [`install`].
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn record(&self, phase: Phase, us: u64) {
        let i = phase as usize;
        self.total_us[i].fetch_add(us, Ordering::Relaxed);
        self.count[i].fetch_add(1, Ordering::Relaxed);
        self.max_us[i].fetch_max(us, Ordering::Relaxed);
    }

    /// Attributed total for one phase, microseconds.
    #[must_use]
    pub fn phase_total_us(&self, phase: Phase) -> u64 {
        self.total_us[phase as usize].load(Ordering::Relaxed)
    }

    /// Current totals for every phase, in [`Phase::ALL`] order.
    #[must_use]
    pub fn stats(&self) -> [PhaseStats; NUM_PHASES] {
        std::array::from_fn(|i| PhaseStats {
            phase: Phase::ALL[i],
            total_us: self.total_us[i].load(Ordering::Relaxed),
            count: self.count[i].load(Ordering::Relaxed),
            max_us: self.max_us[i].load(Ordering::Relaxed),
        })
    }

    /// Close one descent step: snapshot the per-phase deltas since the
    /// previous `end_step` into the breakdown ring. Called from the job's
    /// progress hook (outside the descent loop, like all timing).
    pub fn end_step(&self, step: usize) {
        let totals: [u64; NUM_PHASES] =
            std::array::from_fn(|i| self.total_us[i].load(Ordering::Relaxed));
        let mut ring = self.ring.lock().expect("profile ring lock poisoned");
        let mut entry = StepBreakdown {
            step,
            phase_us: [0; NUM_PHASES],
        };
        for (slot, (now, prev)) in entry
            .phase_us
            .iter_mut()
            .zip(totals.iter().zip(&ring.last_totals))
        {
            *slot = now.saturating_sub(*prev);
        }
        ring.last_totals = totals;
        let head = ring.head;
        ring.entries[head] = entry;
        ring.head = (head + 1) % PROFILE_RING;
        ring.len = (ring.len + 1).min(PROFILE_RING);
    }

    /// The retained per-step breakdowns, oldest first.
    #[must_use]
    pub fn steps(&self) -> Vec<StepBreakdown> {
        let ring = self.ring.lock().expect("profile ring lock poisoned");
        let mut out = Vec::with_capacity(ring.len);
        let start = (ring.head + PROFILE_RING - ring.len) % PROFILE_RING;
        for i in 0..ring.len {
            out.push(ring.entries[(start + i) % PROFILE_RING]);
        }
        out
    }
}

struct OpenScope {
    phase: Phase,
    start: Instant,
    /// Time consumed by nested scopes, excluded from this scope's self-time.
    child_us: u64,
}

struct ProfileContext {
    profile: Option<Arc<JobProfile>>,
    stack: Vec<OpenScope>,
}

thread_local! {
    static CURRENT: RefCell<ProfileContext> = RefCell::new(ProfileContext {
        profile: None,
        // Scopes nest at most a few layers (score → page_in → decode);
        // pre-size so the hot path never reallocates.
        stack: Vec::with_capacity(8),
    });
}

/// Install `profile` as this thread's attribution target; restored to the
/// previous target when the returned guard drops. `!Send` by construction —
/// the guard must drop on the installing thread.
#[must_use]
pub fn install(profile: Arc<JobProfile>) -> InstallGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().profile.replace(profile));
    InstallGuard {
        previous,
        _not_send: PhantomData,
    }
}

/// The currently installed profile handle, if any — what
/// [`crate::parallel_map`] propagates into its pool workers so paging done
/// on their threads still lands in the requesting job's profile.
#[must_use]
pub fn current() -> Option<Arc<JobProfile>> {
    CURRENT.with(|c| c.borrow().profile.clone())
}

/// Restores the previously installed profile on drop.
pub struct InstallGuard {
    previous: Option<Arc<JobProfile>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| c.borrow_mut().profile = previous);
    }
}

/// Open a phase scope: the time from here until the returned guard drops is
/// attributed to `phase` on the installed profile, minus any nested scopes
/// opened on this thread meanwhile. With no profile installed this is one
/// thread-local check and the guard is inert.
#[must_use]
pub fn scope(phase: Phase) -> PhaseScope {
    let active = CURRENT.with(|c| {
        let mut ctx = c.borrow_mut();
        if ctx.profile.is_none() {
            return false;
        }
        ctx.stack.push(OpenScope {
            phase,
            start: Instant::now(),
            child_us: 0,
        });
        true
    });
    PhaseScope {
        active,
        _not_send: PhantomData,
    }
}

/// Guard returned by [`scope`]; records on drop. Strictly stack-ordered on
/// one thread (`!Send`), which is what makes self-time subtraction sound.
pub struct PhaseScope {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CURRENT.with(|c| {
            let mut ctx = c.borrow_mut();
            let Some(open) = ctx.stack.pop() else { return };
            let elapsed_us = u64::try_from(open.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let self_us = elapsed_us.saturating_sub(open.child_us);
            if let Some(parent) = ctx.stack.last_mut() {
                parent.child_us = parent.child_us.saturating_add(elapsed_us);
            }
            if let Some(profile) = &ctx.profile {
                profile.record(open.phase, self_us);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scopes_are_inert_without_an_installed_profile() {
        // No profile: the scope must not panic, record, or leak stack state.
        {
            let _s = scope(Phase::Score);
        }
        assert!(current().is_none());
        CURRENT.with(|c| assert!(c.borrow().stack.is_empty()));
    }

    #[test]
    fn install_guard_restores_the_previous_profile() {
        let outer = JobProfile::new();
        let inner = JobProfile::new();
        let g1 = install(outer.clone());
        {
            let _g2 = install(inner.clone());
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn scopes_attribute_to_the_installed_profile() {
        let profile = JobProfile::new();
        let _g = install(profile.clone());
        {
            let _s = scope(Phase::Decode);
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = profile.stats();
        let decode = stats[Phase::Decode as usize];
        assert_eq!(decode.count, 1);
        assert!(decode.total_us >= 1_000, "got {}", decode.total_us);
        assert_eq!(decode.max_us, decode.total_us);
        assert_eq!(stats[Phase::Score as usize].count, 0);
    }

    #[test]
    fn nested_scopes_subtract_child_time_from_the_parent() {
        let profile = JobProfile::new();
        let _g = install(profile.clone());
        {
            let _outer = scope(Phase::Score);
            {
                let _inner = scope(Phase::PageIn);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let page = profile.phase_total_us(Phase::PageIn);
        let score = profile.phase_total_us(Phase::Score);
        assert!(page >= 5_000, "inner scope owns the sleep, got {page}");
        assert!(
            score < page / 2,
            "outer self-time excludes the nested sleep: score={score} page={page}"
        );
    }

    #[test]
    fn end_step_snapshots_deltas_into_the_ring() {
        let profile = JobProfile::new();
        let _g = install(profile.clone());
        for step in 1..=3 {
            {
                let _s = scope(Phase::Sample);
                std::thread::sleep(Duration::from_millis(1));
            }
            profile.end_step(step);
        }
        let steps = profile.steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(
            steps.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let ring_sum: u64 = steps
            .iter()
            .map(|s| s.phase_us[Phase::Sample as usize])
            .sum();
        assert_eq!(
            ring_sum,
            profile.phase_total_us(Phase::Sample),
            "deltas partition the total while the ring has not wrapped"
        );
    }

    #[test]
    fn the_ring_retains_only_the_last_n_steps() {
        let profile = JobProfile::new();
        for step in 1..=(PROFILE_RING + 5) {
            profile.end_step(step);
        }
        let steps = profile.steps();
        assert_eq!(steps.len(), PROFILE_RING);
        assert_eq!(steps.first().unwrap().step, 6, "oldest surviving step");
        assert_eq!(steps.last().unwrap().step, PROFILE_RING + 5);
    }

    #[test]
    fn worker_thread_records_land_in_the_same_profile() {
        let profile = JobProfile::new();
        let handle = profile.clone();
        std::thread::spawn(move || {
            let _g = install(handle);
            let _s = scope(Phase::Wire);
            std::thread::sleep(Duration::from_millis(1));
        })
        .join()
        .unwrap();
        assert_eq!(profile.stats()[Phase::Wire as usize].count, 1);
    }
}
