//! The process-wide metrics registry: atomic counters, gauges, and
//! log-bucketed latency histograms, rendered in Prometheus text exposition
//! format.
//!
//! Every series is addressed by `(metric name, label pairs)`. Handles are
//! `Arc`-shared and lock-free on the hot path: registration takes the
//! registry mutex once, after which `inc`/`set`/`record` are single relaxed
//! atomic operations. Instrumented code resolves its handles up front (at
//! store open, coordinator construction, route dispatch) and never touches
//! the registry lock per event.
//!
//! Histograms bucket by powers of two (`le ∈ {1, 2, 4, …, 2^30, +Inf}`,
//! conventionally microseconds) and keep an exact `sum` and `count`
//! alongside the buckets, so averages are exact. Quantiles come from a
//! fixed [`RESERVOIR_SLOTS`]-slot exact-value reservoir maintained next to
//! the buckets (Algorithm R with a splitmix64 hash of the observation index
//! as the replacement coin — deterministic and wall-clock-free):
//! [`Histogram::quantile`] returns an actually observed value, exact while
//! `count ≤ 512` and a uniform-sample estimate above, instead of a bucket
//! ceiling. `_sum`/`_count`/`_bucket` stay exact regardless.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: `le = 2^0 … 2^30`, then `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Slots in the exact-value quantile reservoir each histogram carries.
pub const RESERVOIR_SLOTS: usize = 512;

/// One splitmix64 finalizer step — the replacement coin for the reservoir.
/// A hash of the observation index (not a clock, not a shared RNG) keeps
/// recording wall-clock-free and deterministic for a given arrival order.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (in-flight requests, resident bytes, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtract `d`.
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed distribution with an exact sum and count, plus a
/// fixed-size exact-value reservoir for quantiles.
///
/// Values are `u64` (the convention throughout the workspace is
/// microseconds). Bucket `i < 31` holds values `v ≤ 2^i`; bucket 31 is
/// `+Inf`. `record` is three relaxed atomic adds plus at most one relaxed
/// store into the reservoir — safe for concurrent recording from any number
/// of threads with no lost updates in `sum`/`count`/buckets, which the unit
/// tests pin via sum/count invariants. (A racing reservoir replacement may
/// drop one of two simultaneous candidates for the same slot; the reservoir
/// is a sample by construction, so that only perturbs the sample.)
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    reservoir: [AtomicU64; RESERVOIR_SLOTS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            reservoir: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The `le` upper bound of bucket `i`, or `None` for the `+Inf` bucket.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
}

/// The bucket index for a recorded value: the smallest `i` with `v ≤ 2^i`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let i = (u64::BITS - (v - 1).leading_zeros()) as usize;
    i.min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // `n` is this observation's 0-based index in arrival order. The
        // first RESERVOIR_SLOTS observations fill the reservoir verbatim;
        // afterwards observation n replaces a uniformly hashed slot with
        // probability RESERVOIR_SLOTS/(n+1) — Algorithm R, with splitmix64(n)
        // standing in for the random coin so recording stays clock-free.
        let n = self.count.fetch_add(1, Ordering::Relaxed);
        if (n as usize) < RESERVOIR_SLOTS {
            self.reservoir[n as usize].store(value, Ordering::Relaxed);
        } else {
            let j = splitmix64(n) % (n + 1);
            if (j as usize) < RESERVOIR_SLOTS {
                self.reservoir[j as usize].store(value, Ordering::Relaxed);
            }
        }
    }

    /// Exact number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), a consistent-enough snapshot for
    /// exposition.
    #[must_use]
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as an actually recorded value: rank
    /// `⌈q·len⌉` of the sorted reservoir sample. Exact while
    /// `count ≤ RESERVOIR_SLOTS`; above that, a uniform-sample estimate
    /// whose error shrinks with the reservoir size (the value returned is
    /// still always one that was genuinely observed, never a bucket
    /// ceiling). `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let filled = usize::try_from(total)
            .unwrap_or(usize::MAX)
            .min(RESERVOIR_SLOTS);
        let mut sample: Vec<u64> = self.reservoir[..filled]
            .iter()
            .map(|v| v.load(Ordering::Relaxed))
            .collect();
        sample.sort_unstable();
        let rank = ((q * filled as f64).ceil() as usize).clamp(1, filled);
        Some(sample[rank - 1])
    }
}

/// Label pairs, sorted by key for a canonical series identity.
type Labels = Vec<(String, String)>;

fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    out.sort();
    out
}

#[derive(Debug)]
enum Metric {
    Counter(BTreeMap<Labels, Arc<Counter>>),
    Gauge(BTreeMap<Labels, Arc<Gauge>>),
    Histogram(BTreeMap<Labels, Arc<Histogram>>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

/// The metric store: series keyed by name then sorted label pairs.
///
/// One process-wide instance lives behind [`global`]; constructing private
/// registries is possible for tests but production code should share the
/// global one so `/metrics` sees every layer.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(BTreeMap::new()));
        match metric {
            Metric::Counter(series) => series.entry(canonical_labels(labels)).or_default().clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(BTreeMap::new()));
        match metric {
            Metric::Gauge(series) => series.entry(canonical_labels(labels)).or_default().clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(BTreeMap::new()));
        match metric {
            Metric::Histogram(series) => {
                series.entry(canonical_labels(labels)).or_default().clone()
            }
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Render every series in Prometheus text exposition format (one
    /// `# TYPE` comment per metric, then one `name{labels} value` line per
    /// series; histograms expand to cumulative `_bucket` series plus exact
    /// `_sum`/`_count`, and derived `_p50`/`_p90`/`_p99` gauges).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(series) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    for (labels, c) in series {
                        render_line(&mut out, name, labels, None, &c.get().to_string());
                    }
                }
                Metric::Gauge(series) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    for (labels, g) in series {
                        render_line(&mut out, name, labels, None, &g.get().to_string());
                    }
                }
                Metric::Histogram(series) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for (labels, h) in series {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, c) in snap.iter().enumerate() {
                            cum += c;
                            let le = bucket_upper_bound(i)
                                .map_or_else(|| "+Inf".to_string(), |b| b.to_string());
                            render_line(
                                &mut out,
                                &format!("{name}_bucket"),
                                labels,
                                Some(("le", &le)),
                                &cum.to_string(),
                            );
                        }
                        render_line(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            None,
                            &h.sum().to_string(),
                        );
                        render_line(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            None,
                            &h.count().to_string(),
                        );
                    }
                    for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                        out.push_str(&format!("# TYPE {name}_{suffix} gauge\n"));
                        for (labels, h) in series {
                            let v = h
                                .quantile(q)
                                .map_or_else(|| "0".to_string(), |b| b.to_string());
                            render_line(&mut out, &format!("{name}_{suffix}"), labels, None, &v);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value per the exposition format: backslash, double quote,
/// and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_line(
    out: &mut String,
    name: &str,
    labels: &Labels,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let has_labels = !labels.is_empty() || extra.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// The process-wide registry every layer (server, store, fleet, jobs,
/// faults) reports into and `GET /metrics` renders from.
#[must_use]
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("hits_total", &[("route", "/health")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) resolves to the same series.
        assert_eq!(reg.counter("hits_total", &[("route", "/health")]).get(), 5);
        // Label order does not matter.
        let a = reg.counter("multi", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("multi", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);

        let g = reg.gauge("inflight", &[]);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", &[]);
        let _ = reg.gauge("x_total", &[]);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // The smallest i with v <= 2^i, exactly at and around boundaries.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(30), Some(1 << 30));
        assert_eq!(bucket_upper_bound(31), None);
    }

    #[test]
    fn histogram_quantiles_are_exact_recorded_values_below_reservoir_capacity() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 100 values of 1: every quantile is exactly 1.
        for _ in 0..100 {
            h.record(1);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.99), Some(1));
        // Add 100 values of 1000: p50 stays at the first mass; p90/p99 are
        // the exact value 1000, not its 1024 bucket ceiling.
        for _ in 0..100 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(1000));
        assert_eq!(h.quantile(0.99), Some(1000));
        assert_eq!(h.sum(), 100 + 100 * 1000);
        assert_eq!(h.count(), 200);
    }

    #[test]
    fn reservoir_replacement_keeps_quantiles_observed_and_sum_exact() {
        // Far past the reservoir capacity: quantiles must still be values
        // that were genuinely recorded (here: the single recorded magnitude
        // per tercile), monotone in q, and `_sum`/`_count` stay exact.
        let h = Histogram::default();
        let n: u64 = 30_000;
        for i in 0..n {
            h.record(match i % 3 {
                0 => 10,
                1 => 100,
                _ => 1000,
            });
        }
        assert_eq!(h.count(), n);
        assert_eq!(h.sum(), (n / 3) * (10 + 100 + 1000));
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(matches!(p50, 10 | 100 | 1000), "observed value, got {p50}");
        assert_eq!(p99, 1000, "top percentile of a third-heavy tail");
        assert!(p50 <= p99, "quantiles are monotone");
        // With 10k observations per magnitude, a 512-slot uniform sample
        // putting the median anywhere but the middle magnitude would be a
        // gross sampling failure.
        assert_eq!(p50, 100);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        // sum/count invariants survive concurrent recording: no lost
        // updates anywhere in the bucket array or the exact accumulators.
        let h = Arc::new(Histogram::default());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        thread::scope(|s| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record((t * PER_THREAD + i) % 1000);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 1000).sum();
        assert_eq!(h.sum(), expected_sum);
        let bucket_total: u64 = h.snapshot().iter().sum();
        assert_eq!(bucket_total, THREADS * PER_THREAD);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = Registry::new();
        reg.counter("req_total", &[("route", "GET /health")]).add(3);
        reg.gauge("inflight", &[]).set(2);
        let h = reg.histogram("latency_us", &[("route", "GET /health")]);
        h.record(3);
        h.record(900);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{route=\"GET /health\"} 3\n"));
        assert!(text.contains("inflight 2\n"));
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{route=\"GET /health\",le=\"4\"} 1\n"));
        assert!(text.contains("latency_us_bucket{route=\"GET /health\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("latency_us_sum{route=\"GET /health\"} 903\n"));
        assert!(text.contains("latency_us_count{route=\"GET /health\"} 2\n"));
        // Quantile gauges carry exact reservoir values, not bucket ceilings.
        assert!(text.contains("latency_us_p50{route=\"GET /health\"} 3\n"));
        assert!(text.contains("latency_us_p99{route=\"GET /health\"} 900\n"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("value separator");
            assert!(!series.is_empty());
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("odd_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("odd_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
