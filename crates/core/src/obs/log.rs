//! Span-based structured logging to stderr, governed by `FAIR_LOG`.
//!
//! `FAIR_LOG=off|text|json` (default `off`) selects the emission format:
//! one line per [`Span`] close or [`Event`] emit, carrying the target, the
//! span duration in microseconds, and any attached fields. `text` renders
//! `key=value` pairs for eyeballs; `json` renders one JSON object per line
//! for machines (the CI smoke gate asserts every stderr line parses).
//!
//! Request correlation rides on trace ids: [`next_trace_id`] mints a
//! 16-hex-char id at the HTTP accept path, the `x-fair-trace` request
//! header carries it across the fleet, and every span/event tagged with
//! [`Span::trace`] shares it — so a coordinator retry and the worker-side
//! handler span it provoked line up under one id.
//!
//! Tests observe emission without scraping stderr through the capture sink:
//! [`capture`] returns a guard that mirrors every record into an in-memory
//! buffer regardless of mode; [`captured`] snapshots it. Records are
//! cheap no-ops when the mode is `off` and no capture is active.

use std::fmt::Display;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Emission format, from `FAIR_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// No stderr emission (the default).
    Off,
    /// Human-readable `key=value` lines.
    Text,
    /// One JSON object per line.
    Json,
}

impl LogMode {
    /// Parse a `FAIR_LOG` value; `None` for unrecognised input.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" => Some(Self::Off),
            "text" | "1" => Some(Self::Text),
            "json" => Some(Self::Json),
            _ => None,
        }
    }
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// The active emission mode, resolved from `FAIR_LOG` on first use.
/// Unrecognised values disable emission and leave one plain warning on
/// stderr rather than silently eating a typo.
#[must_use]
pub fn log_mode() -> LogMode {
    match MODE.load(Ordering::Relaxed) {
        0 => LogMode::Off,
        1 => LogMode::Text,
        2 => LogMode::Json,
        _ => {
            let mode = match std::env::var("FAIR_LOG") {
                Ok(v) => LogMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("ignoring unrecognised FAIR_LOG value {v:?} (want off|text|json)");
                    LogMode::Off
                }),
                Err(_) => LogMode::Off,
            };
            set_log_mode(mode);
            mode
        }
    }
}

/// Override the emission mode (tests, embedders). Later `FAIR_LOG` reads
/// are ignored once set.
pub fn set_log_mode(mode: LogMode) {
    let v = match mode {
        LogMode::Off => 0,
        LogMode::Text => 1,
        LogMode::Json => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// One emitted record, as seen by the test capture sink.
#[derive(Debug, Clone)]
pub struct Record {
    /// `"span"` or `"event"`.
    pub kind: &'static str,
    /// The dotted subsystem target (`serve.request`, `fleet.eject`, …).
    pub target: &'static str,
    /// Span duration in microseconds (`None` for events).
    pub duration_us: Option<u64>,
    /// Attached `(key, value)` fields in attachment order.
    pub fields: Vec<(&'static str, String)>,
}

impl Record {
    /// The value of field `key`, if attached.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

static CAPTURE_ACTIVE: AtomicUsize = AtomicUsize::new(0);
const CAPTURE_CAP: usize = 8192;

fn capture_buffer() -> &'static Mutex<Vec<Record>> {
    static BUF: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

/// Keeps the capture sink active while alive; concurrent guards share one
/// buffer, so tests should filter [`captured`] by target and trace id.
#[derive(Debug)]
pub struct CaptureGuard(());

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        CAPTURE_ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Start mirroring records into the in-memory capture buffer.
#[must_use]
pub fn capture() -> CaptureGuard {
    CAPTURE_ACTIVE.fetch_add(1, Ordering::SeqCst);
    CaptureGuard(())
}

/// Snapshot the capture buffer (records from every active guard).
#[must_use]
pub fn captured() -> Vec<Record> {
    capture_buffer()
        .lock()
        .expect("capture lock poisoned")
        .clone()
}

fn capture_active() -> bool {
    CAPTURE_ACTIVE.load(Ordering::SeqCst) > 0
}

/// Whether building record fields is worthwhile right now.
#[must_use]
pub fn log_enabled() -> bool {
    log_mode() != LogMode::Off || capture_active()
}

/// Mint a process-unique 16-hex-char trace id (splitmix64 over a
/// time-and-pid seed plus a monotone counter — wall clock touches only the
/// serve layer, never kernel math).
#[must_use]
pub fn next_trace_id() -> String {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
        nanos ^ (u64::from(std::process::id()) << 32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    format!("{z:016x}")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn now_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| {
        u64::try_from(d.as_micros().min(u128::from(u64::MAX))).unwrap_or(u64::MAX)
    })
}

fn emit(record: &Record) {
    match log_mode() {
        LogMode::Off => {}
        LogMode::Text => {
            let mut line = format!("{} target={}", record.kind, record.target);
            if let Some(d) = record.duration_us {
                line.push_str(&format!(" duration_us={d}"));
            }
            for (k, v) in &record.fields {
                if v.contains(' ') || v.is_empty() {
                    line.push_str(&format!(" {k}={v:?}"));
                } else {
                    line.push_str(&format!(" {k}={v}"));
                }
            }
            eprintln!("{line}");
        }
        LogMode::Json => {
            let mut line = format!(
                "{{\"kind\":\"{}\",\"target\":\"{}\",\"ts_us\":{}",
                record.kind,
                json_escape(record.target),
                now_us()
            );
            if let Some(d) = record.duration_us {
                line.push_str(&format!(",\"duration_us\":{d}"));
            }
            for (k, v) in &record.fields {
                line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            line.push('}');
            eprintln!("{line}");
        }
    }
    if capture_active() {
        let mut buf = capture_buffer().lock().expect("capture lock poisoned");
        if buf.len() < CAPTURE_CAP {
            buf.push(record.clone());
        }
    }
}

/// A timed scope: emits one record on drop (or [`Span::close`]) carrying
/// its target, wall-clock duration in microseconds, and attached fields.
/// Construction is a single `Instant::now()` when logging is disabled.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
    enabled: bool,
}

impl Span {
    /// Open a span for `target`.
    #[must_use]
    pub fn new(target: &'static str) -> Self {
        Self {
            target,
            start: Instant::now(),
            fields: Vec::new(),
            enabled: log_enabled(),
        }
    }

    /// Attach a field (no-op while logging is disabled).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Display) -> Self {
        if self.enabled {
            self.fields.push((key, value.to_string()));
        }
        self
    }

    /// Attach the trace id under the conventional `trace` key.
    #[must_use]
    pub fn trace(self, id: &str) -> Self {
        self.field("trace", id)
    }

    /// Elapsed time since the span opened.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros().min(u128::from(u64::MAX)))
            .unwrap_or(u64::MAX)
    }

    /// Close explicitly (equivalent to dropping).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.enabled {
            return;
        }
        emit(&Record {
            kind: "span",
            target: self.target,
            duration_us: Some(
                u64::try_from(self.start.elapsed().as_micros().min(u128::from(u64::MAX)))
                    .unwrap_or(u64::MAX),
            ),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// A point-in-time structured record (job state change, fault injection,
/// startup config, …). Build with fields, then [`Event::emit`].
#[derive(Debug)]
pub struct Event {
    target: &'static str,
    fields: Vec<(&'static str, String)>,
    enabled: bool,
}

impl Event {
    /// Start an event for `target`.
    #[must_use]
    pub fn new(target: &'static str) -> Self {
        Self {
            target,
            fields: Vec::new(),
            enabled: log_enabled(),
        }
    }

    /// Attach a field (no-op while logging is disabled).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Display) -> Self {
        if self.enabled {
            self.fields.push((key, value.to_string()));
        }
        self
    }

    /// Attach the trace id under the conventional `trace` key.
    #[must_use]
    pub fn trace(self, id: &str) -> Self {
        self.field("trace", id)
    }

    /// Emit the record.
    pub fn emit(self) {
        if !self.enabled {
            return;
        }
        emit(&Record {
            kind: "event",
            target: self.target,
            duration_us: None,
            fields: self.fields,
        });
    }
}

/// A diagnostic that must reach stderr even with logging off (malformed
/// env vars, contained panics): plain text under `off`/`text`, a JSON
/// event line under `json` so the every-line-parses contract holds.
pub fn warn(target: &'static str, message: &str) {
    match log_mode() {
        LogMode::Json => {
            eprintln!(
                "{{\"kind\":\"warn\",\"target\":\"{}\",\"ts_us\":{},\"message\":\"{}\"}}",
                json_escape(target),
                now_us(),
                json_escape(message)
            );
        }
        _ => eprintln!("[{target}] {message}"),
    }
    if capture_active() {
        let mut buf = capture_buffer().lock().expect("capture lock poisoned");
        if buf.len() < CAPTURE_CAP {
            buf.push(Record {
                kind: "warn",
                target,
                duration_us: None,
                fields: vec![("message", message.to_string())],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(LogMode::parse("off"), Some(LogMode::Off));
        assert_eq!(LogMode::parse(""), Some(LogMode::Off));
        assert_eq!(LogMode::parse("TEXT"), Some(LogMode::Text));
        assert_eq!(LogMode::parse("json"), Some(LogMode::Json));
        assert_eq!(LogMode::parse(" json "), Some(LogMode::Json));
        assert_eq!(LogMode::parse("yaml"), None);
    }

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn capture_sees_spans_and_events() {
        let guard = capture();
        let trace = next_trace_id();
        Event::new("test.capture.event")
            .trace(&trace)
            .field("k", "v1 v2")
            .emit();
        Span::new("test.capture.span")
            .trace(&trace)
            .field("n", 7)
            .close();
        let records: Vec<Record> = captured()
            .into_iter()
            .filter(|r| r.field("trace") == Some(trace.as_str()))
            .collect();
        drop(guard);
        assert_eq!(records.len(), 2, "{records:?}");
        let event = &records[0];
        assert_eq!(event.kind, "event");
        assert_eq!(event.target, "test.capture.event");
        assert_eq!(event.field("k"), Some("v1 v2"));
        assert_eq!(event.duration_us, None);
        let span = &records[1];
        assert_eq!(span.kind, "span");
        assert_eq!(span.field("n"), Some("7"));
        assert!(span.duration_us.is_some());
    }

    #[test]
    fn json_escaping_covers_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
