//! Full DCA — the non-sampled variant used in the accuracy analysis
//! (Theorem 4.1).
//!
//! Full DCA runs the same descent as Core DCA but evaluates the objective on
//! the *entire* dataset at every step. It is linear in the dataset size per
//! step and therefore much slower on large populations, but it removes all
//! sampling noise; the paper uses it to prove that every step allocates more
//! additional bonus points to an object whose inclusion would reduce
//! disparity than to the object it would displace.

use crate::dataset::Dataset;
use crate::dca::config::DcaConfig;
use crate::dca::control::RunControl;
use crate::dca::core::{clamp_bonus, CoreTraceEntry};
use crate::dca::objective::Objective;
use crate::dca::scratch::DcaScratch;
use crate::error::{FairError, Result};
use crate::ranking::Ranker;

/// Output of a Full DCA run.
#[derive(Debug, Clone, PartialEq)]
pub struct FullDcaOutcome {
    /// Final (unrounded) bonus values.
    pub bonus: Vec<f64>,
    /// Number of descent steps executed.
    pub steps: usize,
    /// Number of objects scored across all steps (= steps × dataset size).
    pub objects_scored: usize,
    /// Optional per-step trace.
    pub trace: Vec<CoreTraceEntry>,
}

/// Run Full DCA: Algorithm 1 with the sample replaced by the whole dataset.
/// The `sample_size` field of the configuration is ignored.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_full_dca<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
) -> Result<FullDcaOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let mut scratch = DcaScratch::new();
    run_full_dca_with(
        dataset,
        ranker,
        objective,
        config,
        initial,
        trace,
        &mut scratch,
    )
}

/// [`run_full_dca`] reusing a caller-provided [`DcaScratch`], so every step
/// is allocation-free.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_full_dca_with<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    scratch: &mut DcaScratch,
) -> Result<FullDcaOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let view = dataset.full_view();
    let eval = &mut scratch.eval;
    run_full_descent(
        dataset.schema().num_fairness(),
        dataset.len(),
        config,
        initial,
        trace,
        &RunControl::new(),
        |bonus, out| objective.evaluate_into(&view, ranker, bonus, eval, out),
    )
}

/// The one Full-DCA descent loop: CLT-bypassing validation, initial-bonus
/// clamp, the learning-rate schedule, and step/trace accounting. The serial
/// runner, [`crate::dca::run_full_dca_sharded`], and distributed coordinators
/// (via [`crate::dca::partial`]) all execute exactly this driver, so their
/// bonus trajectories can only differ through the `evaluate` callback itself
/// — which is what the serial==sharded==distributed bit-for-bit guarantee
/// rests on. `control` is consulted at every step boundary (cancellation) and
/// notified after every completed step (progress); the default control adds
/// one relaxed atomic load per step and nothing else.
///
/// # Errors
/// Returns an error for invalid configurations, empty cohorts, evaluation
/// failures, or a cancellation requested through `control`.
pub fn run_full_descent(
    dims: usize,
    cohort_len: usize,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    control: &RunControl,
    mut evaluate: impl FnMut(&[f64], &mut Vec<f64>) -> Result<()>,
) -> Result<FullDcaOutcome> {
    // Full DCA ignores the sample size, so validate a copy with a size that
    // always passes the CLT check.
    let mut check = config.clone();
    check.sample_size = check.sample_size.max(crate::dca::config::CLT_MINIMUM);
    check.validate(dims)?;
    if cohort_len == 0 {
        return Err(FairError::EmptyDataset);
    }

    let mut bonus = initial.unwrap_or_else(|| vec![0.0; dims]);
    assert_eq!(bonus.len(), dims, "initial bonus dimensionality mismatch");
    clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());

    let mut direction = Vec::new();
    let mut trace_entries = Vec::new();
    let mut steps = 0_usize;
    let mut objects_scored = 0_usize;

    let total_steps = config.core_steps();
    for &lr in &config.learning_rates {
        for _ in 0..config.iterations_per_rate {
            control.checkpoint()?;
            evaluate(&bonus, &mut direction)?;
            debug_assert_eq!(direction.len(), dims);
            for (b, d) in bonus.iter_mut().zip(&direction) {
                *b -= lr * d;
            }
            clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());
            steps += 1;
            objects_scored += cohort_len;
            if trace {
                trace_entries.push(CoreTraceEntry {
                    step: steps - 1,
                    learning_rate: lr,
                    objective_norm: crate::metrics::norm(&direction),
                    bonus: bonus.clone(),
                });
            }
            control.report(steps, total_steps);
        }
    }

    Ok(FullDcaOutcome {
        bonus,
        steps,
        objects_scored,
        trace: trace_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dca::objective::{Objective, TopKDisparity};
    use crate::metrics::{disparity_at_k, norm};
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::{effective_scores, WeightedSumRanker};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn biased_dataset(n: u64, member_rate: f64, shift: f64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let member = rng.gen::<f64>() < member_rate;
                let base: f64 = rng.gen::<f64>() * 100.0;
                let score = if member { base - shift } else { base };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn config() -> DcaConfig {
        DcaConfig {
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 30,
            refinement_iterations: 0,
            ..DcaConfig::default()
        }
    }

    #[test]
    fn full_dca_eliminates_disparity_without_sampling_noise() {
        let dataset = biased_dataset(2000, 0.3, 20.0, 11);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let out = run_full_dca(&dataset, &ranker, &objective, &config(), None, false).unwrap();
        let view = dataset.full_view();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &out.bonus));
        let after = norm(&disparity_at_k(&view, &ranking, 0.2).unwrap());
        assert!(
            after < 0.05,
            "Full DCA should essentially eliminate disparity: {after}"
        );
    }

    #[test]
    fn full_dca_is_deterministic() {
        let dataset = biased_dataset(1000, 0.3, 10.0, 5);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let a = run_full_dca(&dataset, &ranker, &objective, &config(), None, false).unwrap();
        let b = run_full_dca(&dataset, &ranker, &objective, &config(), None, false).unwrap();
        assert_eq!(a.bonus, b.bonus);
    }

    #[test]
    fn work_scales_with_dataset_size() {
        let small = biased_dataset(500, 0.3, 10.0, 5);
        let large = biased_dataset(2000, 0.3, 10.0, 5);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let a = run_full_dca(&small, &ranker, &objective, &cfg, None, false).unwrap();
        let b = run_full_dca(&large, &ranker, &objective, &cfg, None, false).unwrap();
        assert_eq!(a.objects_scored, cfg.core_steps() * 500);
        assert_eq!(b.objects_scored, cfg.core_steps() * 2000);
    }

    /// The property behind Theorem 4.1: at every Full DCA step, if swapping an
    /// unselected object p with a selected object q would reduce disparity,
    /// then p receives at least as much additional bonus as q.
    #[test]
    fn theorem_4_1_swap_property_holds_along_the_trajectory() {
        let dataset = biased_dataset(300, 0.3, 15.0, 23);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut cfg = config();
        cfg.iterations_per_rate = 10;
        let out = run_full_dca(&dataset, &ranker, &objective, &cfg, None, true).unwrap();
        let view = dataset.full_view();
        let k = 0.2;

        let mut previous = vec![0.0; 1];
        for entry in &out.trace {
            // The direction used at this step was evaluated at `previous`.
            let direction = objective.evaluate(&view, &ranker, &previous).unwrap();
            let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &previous));
            let selected = ranking.selected(k).unwrap().to_vec();
            let unselected = ranking.unselected(k).unwrap().to_vec();
            let centroid_all = view.fairness_centroid().unwrap();
            let centroid_sel = view.fairness_centroid_of(&selected).unwrap();
            let s = selected.len() as f64;

            // Check a handful of (p outside, q inside) pairs.
            for &p in unselected.iter().take(5) {
                for &q in selected.iter().take(5) {
                    let fp = view.object(p).fairness();
                    let fq = view.object(q).fairness();
                    // Disparity after swapping p in and q out.
                    let swapped: Vec<f64> = centroid_sel
                        .iter()
                        .zip(fp.iter().zip(fq))
                        .zip(&centroid_all)
                        .map(|((c, (vp, vq)), a)| c + (vp - vq) / s - a)
                        .collect();
                    let current: Vec<f64> = centroid_sel
                        .iter()
                        .zip(&centroid_all)
                        .map(|(c, a)| c - a)
                        .collect();
                    if norm(&swapped) < norm(&current) - 1e-12 {
                        // The additional bonus granted this step is
                        // L * (-direction) · F, so p must gain at least as much
                        // as q: -L*dir·Fp >= -L*dir·Fq  <=>  dir·(Fp - Fq) <= 0.
                        let dot: f64 = direction
                            .iter()
                            .zip(fp.iter().zip(fq))
                            .map(|(d, (vp, vq))| d * (vp - vq))
                            .sum();
                        assert!(
                            dot <= 1e-9,
                            "swap-improving pair must satisfy D·(Fp-Fq) <= 0, got {dot}"
                        );
                    }
                }
            }
            previous = entry.bonus.clone();
        }
    }

    #[test]
    fn empty_dataset_is_error() {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let dataset = Dataset::empty(schema);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        assert!(run_full_dca(&dataset, &ranker, &objective, &config(), None, false).is_err());
    }
}
