//! Reusable scratch buffers for the allocation-free DCA inner loop.
//!
//! Every DCA step evaluates an objective on a fresh sample. Done naively that
//! costs four `O(sample_size)` heap allocations per step (sample indices,
//! effective scores, ranked order, selection mask) plus the direction vector —
//! hundreds of thousands of allocations over a full run. [`DcaScratch`] owns
//! all of those buffers once and is threaded through
//! [`crate::dca::run_core_dca_with`], [`crate::dca::run_full_dca_with`],
//! [`crate::dca::run_refinement_with`] and
//! [`crate::dca::Objective::evaluate_into`], so the steady-state loop
//! performs no `O(sample_size)`-sized allocation. (The metric layer still
//! creates a few `num_fairness`-sized vectors per step — typically 4
//! elements — which are negligible next to the sample-sized buffers.)

use crate::ranking::topk::RankedSelection;
use rand::seq::index::IndexBuffer;

/// Buffers reused by [`crate::dca::Objective::evaluate_into`]: the ranked
/// selection (scores + order) and the top-k membership mask.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    /// Reused ranking: its score and order vectors are refilled in place.
    pub(crate) ranking: RankedSelection,
    /// Reused top-k membership mask (FPR / disparate-impact objectives).
    pub(crate) mask: Vec<bool>,
}

impl EvalScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ranking: RankedSelection::from_scores(Vec::new()),
            mask: Vec::new(),
        }
    }

    /// The most recently computed ranking (primarily for tests and
    /// diagnostics).
    #[must_use]
    pub fn ranking(&self) -> &RankedSelection {
        &self.ranking
    }
}

impl Default for EvalScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// All buffers one DCA run (core, full, or refinement) reuses across steps.
#[derive(Debug, Clone, Default)]
pub struct DcaScratch {
    /// Sampled dataset indices for the current step.
    pub(crate) indices: IndexBuffer,
    /// Objective-evaluation buffers.
    pub(crate) eval: EvalScratch,
    /// The objective (direction) vector of the current step.
    pub(crate) direction: Vec<f64>,
}

impl DcaScratch {
    /// Empty scratch; buffers grow on first use and are retained, so one
    /// instance can be shared across many runs (e.g. a per-`k` sweep).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_constructors_start_empty() {
        let s = DcaScratch::new();
        assert!(s.indices.is_empty());
        assert!(s.direction.is_empty());
        assert!(s.eval.ranking().is_empty());
        let e = EvalScratch::default();
        assert!(e.mask.is_empty());
    }
}
