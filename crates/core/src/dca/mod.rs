//! The Disparity Compensation Algorithm (DCA) — the paper's primary
//! contribution.
//!
//! * [`run_core_dca`] — Algorithm 1: sampled descent over a decreasing
//!   learning-rate ladder.
//! * [`run_refinement`] — Algorithm 2: Adam-driven refinement, iterate
//!   averaging and granularity rounding.
//! * [`run_full_dca`] — the non-sampled variant used in the accuracy analysis.
//! * [`Dca`] — the user-facing facade that chains Core DCA and the refinement
//!   step and returns a ready-to-publish [`crate::bonus::BonusVector`] plus a
//!   [`DcaReport`] with evaluation and timing details.
//!
//! ```
//! use fair_core::prelude::*;
//! use rand::{Rng, SeedableRng};
//!
//! // A toy population where group members score 15 points lower on average.
//! let schema = Schema::from_names(&["score"], &["group"], &[]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let objects: Vec<_> = (0..2000u64)
//!     .map(|i| {
//!         let member = rng.gen::<f64>() < 0.3;
//!         let score = rng.gen::<f64>() * 100.0 - if member { 15.0 } else { 0.0 };
//!         DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
//!     })
//!     .collect();
//! let dataset = Dataset::new(schema, objects).unwrap();
//! let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
//!
//! let config = DcaConfig { sample_size: 200, iterations_per_rate: 30,
//!                          refinement_iterations: 30, rolling_window: 30,
//!                          learning_rates: vec![10.0, 1.0], ..DcaConfig::default() };
//! let result = Dca::new(config).run(&dataset, &ranker, &TopKDisparity::new(0.1)).unwrap();
//! assert!(result.report.disparity_after.norm() < result.report.disparity_before.norm());
//! ```

pub mod config;
pub mod control;
pub mod core;
pub mod full;
pub mod objective;
pub mod partial;
pub mod refine;
pub mod scratch;
pub mod sharded;

pub use self::core::{run_core_dca, run_core_dca_with, CoreDcaOutcome, CoreTraceEntry};
pub use config::{DcaConfig, CLT_MINIMUM};
pub use control::{step_duration_hook, DcaProgress, RunControl};
pub use full::{run_full_dca, run_full_dca_with, run_full_descent, FullDcaOutcome};
pub use objective::{
    FprDifferenceObjective, LogDiscountedObjective, Objective, ScaledDisparateImpact, TopKDisparity,
};
pub use partial::{combine_disparity_partials, disparity_partials, DisparityPartial};
pub use refine::{run_refinement, run_refinement_with, RefinementOutcome};
pub use scratch::{DcaScratch, EvalScratch};
pub use sharded::{
    run_core_dca_gathered, run_core_dca_sharded, run_core_dca_sharded_controlled,
    run_full_dca_sharded, run_full_dca_sharded_controlled, ShardedObjective,
};

use crate::bonus::BonusVector;
use crate::dataset::Dataset;
use crate::error::Result;
use crate::metrics::disparity::DisparityVector;
use crate::ranking::Ranker;
use std::time::{Duration, Instant};

/// Evaluation and timing summary of a DCA run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaReport {
    /// Objective vector on the full dataset before any bonus points.
    pub disparity_before: DisparityVector,
    /// Objective vector on the full dataset under the Core DCA bonus.
    pub disparity_core: DisparityVector,
    /// Objective vector on the full dataset under the final (refined) bonus.
    pub disparity_after: DisparityVector,
    /// Core DCA bonus values, rounded to the configured granularity for
    /// reporting (the paper's "Core DCA" rows).
    pub core_bonus: Vec<f64>,
    /// Wall-clock time of the Core DCA phase.
    pub core_time: Duration,
    /// Wall-clock time of the refinement phase.
    pub refinement_time: Duration,
    /// Objects scored by Core DCA (work proxy).
    pub core_objects_scored: usize,
    /// Objects scored by the refinement phase.
    pub refinement_objects_scored: usize,
}

/// Result of [`Dca::run`]: the published bonus vector plus the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaResult {
    /// The final bonus vector (refined, averaged, rounded, clamped).
    pub bonus: BonusVector,
    /// Evaluation and timing details.
    pub report: DcaReport,
}

/// User-facing facade: Core DCA followed by the refinement step.
#[derive(Debug, Clone)]
pub struct Dca {
    config: DcaConfig,
}

impl Dca {
    /// Create a DCA runner with the given configuration.
    #[must_use]
    pub fn new(config: DcaConfig) -> Self {
        Self { config }
    }

    /// Create a runner with the paper's default configuration.
    #[must_use]
    pub fn with_paper_defaults() -> Self {
        Self::new(DcaConfig::paper_default())
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DcaConfig {
        &self.config
    }

    /// Run DCA end to end on a dataset: Core DCA, then (unless
    /// `refinement_iterations == 0`) the Adam refinement, then evaluation of
    /// the before/after objective on the full dataset.
    ///
    /// # Errors
    /// Returns an error for invalid configurations, empty datasets, or
    /// objective failures.
    pub fn run<R, O>(&self, dataset: &Dataset, ranker: &R, objective: &O) -> Result<DcaResult>
    where
        R: Ranker + ?Sized,
        O: Objective + ?Sized,
    {
        let schema = dataset.schema().clone();
        let names: Vec<String> = schema
            .fairness_names()
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let full = dataset.full_view();

        // Baseline objective (no bonus).
        let zero = vec![0.0; schema.num_fairness()];
        let before = objective.evaluate(&full, ranker, &zero)?;

        // One scratch serves both phases: all per-step buffers are reused.
        let mut scratch = DcaScratch::new();

        // Phase 1: Core DCA.
        let core_start = Instant::now();
        let core = self::core::run_core_dca_with(
            dataset,
            ranker,
            objective,
            &self.config,
            None,
            false,
            &mut scratch,
        )?;
        let core_time = core_start.elapsed();
        let core_eval = objective.evaluate(&full, ranker, &core.bonus)?;
        let core_bonus_rounded = match self.config.granularity {
            Some(g) => core.bonus.iter().map(|v| (v / g).round() * g).collect(),
            None => core.bonus.clone(),
        };

        // Phase 2: refinement (optional).
        let refine_start = Instant::now();
        let (final_values, refinement_objects) = if self.config.refinement_iterations > 0 {
            let refined = refine::run_refinement_with(
                dataset,
                ranker,
                objective,
                &self.config,
                core.bonus,
                &mut scratch,
            )?;
            (refined.bonus, refined.objects_scored)
        } else {
            (core_bonus_rounded.clone(), 0)
        };
        let refinement_time = refine_start.elapsed();

        let after = objective.evaluate(&full, ranker, &final_values)?;
        let bonus = BonusVector::new(schema, final_values, self.config.polarity)?;

        Ok(DcaResult {
            bonus,
            report: DcaReport {
                disparity_before: DisparityVector::new(names.clone(), before),
                disparity_core: DisparityVector::new(names.clone(), core_eval),
                disparity_after: DisparityVector::new(names, after),
                core_bonus: core_bonus_rounded,
                core_time,
                refinement_time,
                core_objects_scored: core.objects_scored,
                refinement_objects_scored: refinement_objects,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::object::DataObject;
    use crate::ranking::WeightedSumRanker;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn biased_dataset(n: u64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["low_income", "ell"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let li = rng.gen::<f64>() < 0.5;
                let ell = rng.gen::<f64>() < 0.15;
                let mut score = rng.gen::<f64>() * 100.0;
                if li {
                    score -= 12.0;
                }
                if ell {
                    score -= 18.0;
                }
                DataObject::new_unchecked(
                    i,
                    vec![score],
                    vec![f64::from(u8::from(li)), f64::from(u8::from(ell))],
                    None,
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn fast_config() -> DcaConfig {
        DcaConfig {
            sample_size: 300,
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 40,
            refinement_iterations: 40,
            rolling_window: 40,
            seed: 99,
            ..DcaConfig::default()
        }
    }

    #[test]
    fn end_to_end_reduces_multidimensional_disparity() {
        let dataset = biased_dataset(5000, 42);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let result = Dca::new(fast_config())
            .run(&dataset, &ranker, &TopKDisparity::new(0.1))
            .unwrap();
        let before = result.report.disparity_before.norm();
        let after = result.report.disparity_after.norm();
        assert!(
            before > 0.15,
            "baseline should be clearly disparate: {before}"
        );
        assert!(
            after < before * 0.4,
            "DCA should cut the norm substantially: {after} vs {before}"
        );
        // Both disadvantaged groups should receive non-negative bonuses and at
        // least one should be clearly positive.
        let values = result.bonus.values();
        assert!(values.iter().all(|v| *v >= 0.0));
        assert!(values.iter().any(|v| *v > 0.5));
    }

    #[test]
    fn report_contains_core_and_refined_evaluations_and_timings() {
        let dataset = biased_dataset(3000, 7);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let result = Dca::new(fast_config())
            .run(&dataset, &ranker, &TopKDisparity::new(0.1))
            .unwrap();
        let r = &result.report;
        assert_eq!(r.disparity_before.values().len(), 2);
        assert_eq!(r.core_bonus.len(), 2);
        assert!(r.core_time > Duration::ZERO);
        assert!(r.core_objects_scored > 0);
        assert!(r.refinement_objects_scored > 0);
        // Core-phase result should already improve over the baseline.
        assert!(r.disparity_core.norm() < r.disparity_before.norm());
    }

    #[test]
    fn refinement_can_be_disabled() {
        let dataset = biased_dataset(2000, 7);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let mut config = fast_config();
        config.refinement_iterations = 0;
        let result = Dca::new(config)
            .run(&dataset, &ranker, &TopKDisparity::new(0.1))
            .unwrap();
        assert_eq!(result.report.refinement_objects_scored, 0);
        // Without refinement the published bonus equals the rounded core bonus.
        assert_eq!(result.bonus.values(), result.report.core_bonus.as_slice());
    }

    #[test]
    fn final_bonus_respects_granularity() {
        let dataset = biased_dataset(2000, 11);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let result = Dca::new(fast_config())
            .run(&dataset, &ranker, &TopKDisparity::new(0.1))
            .unwrap();
        for v in result.bonus.values() {
            let scaled = v / 0.5;
            assert!(
                (scaled - scaled.round()).abs() < 1e-9,
                "{v} not on a 0.5 grid"
            );
        }
    }

    #[test]
    fn paper_default_constructor_works() {
        let dca = Dca::with_paper_defaults();
        assert_eq!(dca.config().sample_size, 500);
    }
}
