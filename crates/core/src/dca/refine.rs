//! The DCA refinement step — Algorithm 2 of the paper.
//!
//! ```text
//! B <- output of Core DCA
//! A <- empty accumulator
//! for x in 1..=iterations:
//!     S   <- next sample from O
//!     D_k <- objective on S under B
//!     B   <- Adam.step(B, D_k)
//!     B   <- clamp(B)
//!     A   <- A + B
//! return ROUND(AVERAGE(A))
//! ```
//!
//! Adam gives every fairness dimension its own adaptive step size, which
//! absorbs the sampling noise; averaging the iterates and rounding to the
//! stakeholder-chosen granularity produces the final published bonus vector.

use crate::dataset::Dataset;
use crate::dca::config::DcaConfig;
use crate::dca::core::clamp_bonus;
use crate::dca::objective::Objective;
use crate::dca::scratch::DcaScratch;
use crate::error::Result;
use crate::ranking::Ranker;
use fair_opt::{Adam, RollingWindow, Step};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Output of the refinement step.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementOutcome {
    /// The averaged, rounded, clamped bonus values — the published vector.
    pub bonus: Vec<f64>,
    /// The raw (unrounded) average of the refinement iterates.
    pub unrounded: Vec<f64>,
    /// Number of Adam steps executed.
    pub steps: usize,
    /// Number of objects scored across all samples.
    pub objects_scored: usize,
}

/// Run the refinement step starting from `initial` (normally the Core DCA
/// output).
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_refinement<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Vec<f64>,
) -> Result<RefinementOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let mut scratch = DcaScratch::new();
    run_refinement_with(dataset, ranker, objective, config, initial, &mut scratch)
}

/// [`run_refinement`] reusing a caller-provided [`DcaScratch`], so every
/// Adam step is allocation-free (apart from the dims-sized rolling-window
/// snapshots).
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_refinement_with<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Vec<f64>,
    scratch: &mut DcaScratch,
) -> Result<RefinementOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let dims = dataset.schema().num_fairness();
    config.validate(dims)?;
    if dataset.is_empty() {
        return Err(crate::error::FairError::EmptyDataset);
    }
    assert_eq!(initial.len(), dims, "initial bonus dimensionality mismatch");

    let mut bonus = initial;
    clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());

    // Offset the seed so the refinement does not replay the exact samples the
    // core phase already consumed.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5EED_0001));
    let mut adam = Adam::new(dims, config.adam);
    let mut window = RollingWindow::new(dims, config.rolling_window);
    let mut objects_scored = 0_usize;
    let mut steps = 0_usize;

    for _ in 0..config.refinement_iterations {
        dataset.sample_indices_into(&mut rng, config.sample_size, &mut scratch.indices)?;
        let sample = dataset.view_of(scratch.indices.as_slice());
        objective.evaluate_into(
            &sample,
            ranker,
            &bonus,
            &mut scratch.eval,
            &mut scratch.direction,
        )?;
        adam.step(&mut bonus, &scratch.direction);
        clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());
        window.push(bonus.clone());
        objects_scored += sample.len();
        steps += 1;
    }

    let unrounded = window.mean().unwrap_or_else(|| bonus.clone());
    let mut rounded = match config.granularity {
        Some(g) => unrounded.iter().map(|v| (v / g).round() * g).collect(),
        None => unrounded.clone(),
    };
    clamp_bonus(&mut rounded, config.polarity, config.caps.as_ref());

    Ok(RefinementOutcome {
        bonus: rounded,
        unrounded,
        steps,
        objects_scored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::bonus::BonusPolarity;
    use crate::dca::core::run_core_dca;
    use crate::dca::objective::TopKDisparity;
    use crate::metrics::{disparity_at_k, norm};
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::{effective_scores, WeightedSumRanker};
    use rand::Rng;

    fn biased_dataset(n: u64, member_rate: f64, shift: f64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let member = rng.gen::<f64>() < member_rate;
                let base: f64 = rng.gen::<f64>() * 100.0;
                let score = if member { base - shift } else { base };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn disparity_with_bonus(dataset: &Dataset, bonus: &[f64], k: f64) -> f64 {
        let view = dataset.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, bonus));
        norm(&disparity_at_k(&view, &ranking, k).unwrap())
    }

    fn config() -> DcaConfig {
        DcaConfig {
            sample_size: 200,
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 40,
            refinement_iterations: 60,
            rolling_window: 60,
            seed: 7,
            ..DcaConfig::default()
        }
    }

    #[test]
    fn refinement_improves_or_matches_core_dca() {
        let dataset = biased_dataset(4000, 0.3, 20.0, 11);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let core = run_core_dca(&dataset, &ranker, &objective, &cfg, None, false).unwrap();
        let refined =
            run_refinement(&dataset, &ranker, &objective, &cfg, core.bonus.clone()).unwrap();
        let core_disp = disparity_with_bonus(&dataset, &core.bonus, 0.2);
        let refined_disp = disparity_with_bonus(&dataset, &refined.bonus, 0.2);
        // Refinement may be equal on easy instances but must not be much worse.
        assert!(
            refined_disp <= core_disp + 0.05,
            "refined {refined_disp} vs core {core_disp}"
        );
        let baseline = disparity_with_bonus(&dataset, &[0.0], 0.2);
        assert!(refined_disp < baseline * 0.5);
    }

    #[test]
    fn output_respects_granularity() {
        let dataset = biased_dataset(2000, 0.3, 15.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let refined = run_refinement(&dataset, &ranker, &objective, &cfg, vec![5.0]).unwrap();
        for b in &refined.bonus {
            let scaled = b / 0.5;
            assert!(
                (scaled - scaled.round()).abs() < 1e-9,
                "{b} is not a multiple of 0.5"
            );
        }
    }

    #[test]
    fn no_granularity_leaves_values_unrounded() {
        let dataset = biased_dataset(2000, 0.3, 15.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut cfg = config();
        cfg.granularity = None;
        let refined = run_refinement(&dataset, &ranker, &objective, &cfg, vec![5.0]).unwrap();
        assert_eq!(refined.bonus, {
            let mut u = refined.unrounded.clone();
            clamp_bonus(&mut u, BonusPolarity::NonNegative, None);
            u
        });
    }

    #[test]
    fn polarity_is_enforced_on_the_final_vector() {
        let dataset = biased_dataset(2000, 0.3, 15.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let refined = run_refinement(&dataset, &ranker, &objective, &config(), vec![0.0]).unwrap();
        assert!(refined.bonus.iter().all(|b| *b >= 0.0));
        assert!(refined.unrounded.iter().all(|b| *b >= 0.0));
    }

    #[test]
    fn zero_refinement_iterations_returns_clamped_initial() {
        let dataset = biased_dataset(1000, 0.3, 10.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut cfg = config();
        cfg.refinement_iterations = 0;
        let refined = run_refinement(&dataset, &ranker, &objective, &cfg, vec![2.3]).unwrap();
        assert_eq!(refined.steps, 0);
        // Rounded to granularity 0.5.
        assert_eq!(refined.bonus, vec![2.5]);
    }

    #[test]
    fn work_accounting_matches_iterations() {
        let dataset = biased_dataset(1000, 0.3, 10.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let refined = run_refinement(&dataset, &ranker, &objective, &cfg, vec![0.0]).unwrap();
        assert_eq!(refined.steps, cfg.refinement_iterations);
        assert_eq!(
            refined.objects_scored,
            cfg.refinement_iterations * cfg.sample_size
        );
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let dataset = biased_dataset(1500, 0.25, 15.0, 21);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.1);
        let a = run_refinement(&dataset, &ranker, &objective, &config(), vec![1.0]).unwrap();
        let b = run_refinement(&dataset, &ranker, &objective, &config(), vec![1.0]).unwrap();
        assert_eq!(a.bonus, b.bonus);
    }
}
