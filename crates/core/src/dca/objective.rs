//! Pluggable optimization objectives for DCA.
//!
//! DCA moves the bonus vector against a vector-valued unfairness measure. The
//! paper's primary objective is the Disparity at a known selection fraction
//! `k` (Definition 3); Section IV-E adds the logarithmically discounted
//! variant for unknown `k`, and Section VI-C5 shows the same algorithm driven
//! by a scaled Disparate Impact or by per-group false-positive-rate
//! differences. Any metric satisfying the contract — one value per fairness
//! attribute, bounded in `[-1, 1]`, 0 meaning fair, sign giving the direction
//! of the imbalance — can drive DCA through the [`Objective`] trait.
//!
//! The hot entry point is [`Objective::evaluate_into`], which reuses the
//! buffers of an [`EvalScratch`] so a DCA step allocates nothing. Objectives
//! whose selection boundary is fixed (`k` known up front) rank their sample
//! through the partial-selection fast path
//! ([`RankedSelection::from_scores_topk`]'s `O(s + m log m)` partition)
//! instead of a full `O(s log s)` sort; the log-discounted objective, which
//! reads many prefixes, keeps the full sort.

use crate::dataset::SampleView;
use crate::dca::scratch::EvalScratch;
use crate::error::Result;
use crate::metrics::{
    disparity_at_k_into, fpr_difference_at_k_into, log_discounted_disparity_into,
    scaled_disparate_impact_at_k_into, LogDiscountConfig,
};
use crate::ranking::topk::{selection_size, RankedSelection};
use crate::ranking::{effective_scores_into, Ranker};

/// A vector-valued unfairness measure that DCA can minimize.
pub trait Objective: Send + Sync {
    /// Evaluate the measure on a (sampled or full) view under the given bonus
    /// values, writing one entry per fairness attribute (each in `[-1, 1]`)
    /// into `out` and reusing the buffers of `scratch` — the allocation-free
    /// path every DCA step takes.
    ///
    /// # Errors
    /// Returns an error on empty views, invalid configurations, or missing
    /// labels (objective-dependent).
    fn evaluate_into<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()>;

    /// Convenience wrapper around [`Objective::evaluate_into`] that allocates
    /// fresh buffers and returns the objective vector.
    ///
    /// # Errors
    /// Returns an error on empty views, invalid configurations, or missing
    /// labels (objective-dependent).
    fn evaluate<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
    ) -> Result<Vec<f64>> {
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        self.evaluate_into(view, ranker, bonus, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// Refill the scratch ranking with the view's effective scores. `topk` of
/// `Some(k)` sorts only the top `selection_size(len, k)` positions (the
/// partial-selection fast path for fixed-`k` objectives); `None` fully sorts.
fn rank_view_into<'s, R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    bonus: &[f64],
    topk: Option<f64>,
    scratch: &'s mut EvalScratch,
) -> Result<&'s RankedSelection> {
    let boundary = match topk {
        Some(k) => Some(selection_size(view.len(), k)?),
        None => None,
    };
    scratch.ranking.refill_with(boundary, |scores| {
        effective_scores_into(view, ranker, bonus, scores);
    });
    Ok(&scratch.ranking)
}

/// The paper's primary objective: Disparity of the top-`k` selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKDisparity {
    /// Selection fraction in `(0, 1]`.
    pub k: f64,
}

impl TopKDisparity {
    /// Disparity at selection fraction `k`.
    #[must_use]
    pub fn new(k: f64) -> Self {
        Self { k }
    }
}

impl Objective for TopKDisparity {
    fn evaluate_into<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        rank_view_into(view, ranker, bonus, Some(self.k), scratch)?;
        disparity_at_k_into(view, &scratch.ranking, self.k, out)
    }

    fn name(&self) -> &'static str {
        "disparity@k"
    }
}

/// Logarithmically discounted disparity over many selection sizes
/// (Section IV-E), for use when `k` is unknown at bonus-assignment time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LogDiscountedObjective {
    /// Checkpoint configuration.
    pub config: LogDiscountConfig,
}

impl LogDiscountedObjective {
    /// Log-discounted disparity with the given checkpoint configuration.
    #[must_use]
    pub fn new(config: LogDiscountConfig) -> Self {
        Self { config }
    }
}

impl Objective for LogDiscountedObjective {
    fn evaluate_into<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        // Reads every checkpoint prefix, so the full sort is required.
        rank_view_into(view, ranker, bonus, None, scratch)?;
        log_discounted_disparity_into(view, &scratch.ranking, &self.config, out)
    }

    fn name(&self) -> &'static str {
        "log-discounted disparity"
    }
}

/// Scaled (signed) disparate impact at selection fraction `k`
/// (Section VI-C5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledDisparateImpact {
    /// Selection fraction in `(0, 1]`.
    pub k: f64,
}

impl ScaledDisparateImpact {
    /// Scaled disparate impact at selection fraction `k`.
    #[must_use]
    pub fn new(k: f64) -> Self {
        Self { k }
    }
}

impl Objective for ScaledDisparateImpact {
    fn evaluate_into<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        rank_view_into(view, ranker, bonus, Some(self.k), scratch)?;
        let EvalScratch { ranking, mask } = scratch;
        scaled_disparate_impact_at_k_into(view, ranking, self.k, mask, out)
    }

    fn name(&self) -> &'static str {
        "scaled disparate impact@k"
    }
}

/// Per-group false-positive-rate difference at selection fraction `k`
/// (Section VI-C5). Requires ground-truth labels on every object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprDifferenceObjective {
    /// Selection fraction in `(0, 1]` — the flagged (positive-prediction) share.
    pub k: f64,
}

impl FprDifferenceObjective {
    /// FPR-difference objective at selection fraction `k`.
    #[must_use]
    pub fn new(k: f64) -> Self {
        Self { k }
    }
}

impl Objective for FprDifferenceObjective {
    fn evaluate_into<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        rank_view_into(view, ranker, bonus, Some(self.k), scratch)?;
        let EvalScratch { ranking, mask } = scratch;
        fpr_difference_at_k_into(view, ranking, self.k, mask, out)
    }

    fn name(&self) -> &'static str {
        "FPR difference@k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::WeightedSumRanker;

    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..20_u64)
            .map(|i| {
                let member = i < 6;
                let score = if member { i as f64 } else { 100.0 + i as f64 };
                DataObject::new_unchecked(
                    i,
                    vec![score],
                    vec![f64::from(u8::from(member))],
                    Some(i % 3 == 0),
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn all_objectives_report_negative_direction_for_excluded_group() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let b = vec![0.0];

        let disp = TopKDisparity::new(0.25)
            .evaluate(&view, &ranker, &b)
            .unwrap();
        assert!(disp[0] < 0.0);
        let logd = LogDiscountedObjective::default()
            .evaluate(&view, &ranker, &b)
            .unwrap();
        assert!(logd[0] < 0.0);
        let di = ScaledDisparateImpact::new(0.25)
            .evaluate(&view, &ranker, &b)
            .unwrap();
        assert!(di[0] < 0.0);
    }

    #[test]
    fn objectives_report_their_names() {
        assert_eq!(TopKDisparity::new(0.05).name(), "disparity@k");
        assert_eq!(
            LogDiscountedObjective::default().name(),
            "log-discounted disparity"
        );
        assert_eq!(
            ScaledDisparateImpact::new(0.05).name(),
            "scaled disparate impact@k"
        );
        assert_eq!(FprDifferenceObjective::new(0.05).name(), "FPR difference@k");
    }

    #[test]
    fn fpr_objective_requires_labels_and_works_when_present() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let fpr = FprDifferenceObjective::new(0.25)
            .evaluate(&view, &ranker, &[0.0])
            .unwrap();
        assert_eq!(fpr.len(), 1);
        assert!(fpr[0].abs() <= 1.0);
    }

    #[test]
    fn bonus_changes_objective_value() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let obj = TopKDisparity::new(0.25);
        let before = obj.evaluate(&view, &ranker, &[0.0]).unwrap()[0];
        let after = obj.evaluate(&view, &ranker, &[1_000.0]).unwrap()[0];
        assert!(before < 0.0 && after > 0.0);
    }

    #[test]
    fn evaluate_into_with_reused_scratch_matches_fresh_evaluation() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        // Interleave objectives with different ranking modes (partial vs
        // full) through the same scratch to prove refills are clean.
        for bonus in [0.0, 5.0, 50.0, 0.0] {
            for k in [0.1, 0.25, 0.5] {
                let obj = TopKDisparity::new(k);
                obj.evaluate_into(&view, &ranker, &[bonus], &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(out, obj.evaluate(&view, &ranker, &[bonus]).unwrap());
            }
            let logd = LogDiscountedObjective::default();
            logd.evaluate_into(&view, &ranker, &[bonus], &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, logd.evaluate(&view, &ranker, &[bonus]).unwrap());
            let fpr = FprDifferenceObjective::new(0.25);
            fpr.evaluate_into(&view, &ranker, &[bonus], &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, fpr.evaluate(&view, &ranker, &[bonus]).unwrap());
        }
    }
}
