//! Core DCA — Algorithm 1 of the paper.
//!
//! ```text
//! B <- 0 (or random)
//! for L in learning_rates (decreasing):
//!     for x in 1..=iterations:
//!         S   <- random sample of `sample_size` objects from O
//!         D_k <- objective evaluated on S under the current bonus B
//!         B   <- B - L * D_k
//!         B   <- clamp(B)              // polarity + optional caps
//! ```
//!
//! The entire dataset is never scanned: every step touches only the sample, so
//! the cost per step is `O(sample_size · log(sample_size))` regardless of
//! dataset size (Section IV-D).

use crate::bonus::{BonusCaps, BonusPolarity};
use crate::dataset::Dataset;
use crate::dca::config::DcaConfig;
use crate::dca::objective::Objective;
use crate::dca::scratch::DcaScratch;
use crate::error::Result;
use crate::ranking::Ranker;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-step trace entry recorded by Core DCA when tracing is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreTraceEntry {
    /// Global step index (across all learning rates).
    pub step: usize,
    /// Learning rate in effect.
    pub learning_rate: f64,
    /// L2 norm of the sampled objective vector.
    pub objective_norm: f64,
    /// Bonus values after the update and clamping.
    pub bonus: Vec<f64>,
}

/// Output of a Core DCA run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDcaOutcome {
    /// Final (unrounded) bonus values.
    pub bonus: Vec<f64>,
    /// Number of descent steps executed.
    pub steps: usize,
    /// Number of objects scored across all samples (work proxy for the
    /// sub-linearity claim).
    pub objects_scored: usize,
    /// Optional per-step trace.
    pub trace: Vec<CoreTraceEntry>,
}

/// Clamp a bonus vector in place according to the polarity and optional caps.
pub(crate) fn clamp_bonus(bonus: &mut [f64], polarity: BonusPolarity, caps: Option<&BonusCaps>) {
    for (i, b) in bonus.iter_mut().enumerate() {
        let mut v = polarity.clamp(*b);
        if let Some(caps) = caps {
            v = caps.clamp(i, v);
            v = polarity.clamp(v);
        }
        *b = v;
    }
}

/// Run Core DCA (Algorithm 1).
///
/// * `dataset` — the population `O` (or a training cohort drawn from the
///   underlying distribution),
/// * `ranker` — the score-based ranking function,
/// * `objective` — the unfairness measure to minimize,
/// * `config` — sample size, learning-rate ladder, polarity, caps, seed,
/// * `initial` — starting bonus values (`None` starts from zero),
/// * `trace` — record the per-step trajectory.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures (e.g. the FPR objective on an unlabelled dataset).
pub fn run_core_dca<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
) -> Result<CoreDcaOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let mut scratch = DcaScratch::new();
    run_core_dca_with(
        dataset,
        ranker,
        objective,
        config,
        initial,
        trace,
        &mut scratch,
    )
}

/// [`run_core_dca`] reusing a caller-provided [`DcaScratch`], so repeated
/// runs (sweeps, benchmarks) and every step within a run are allocation-free.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_core_dca_with<R, O>(
    dataset: &Dataset,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    scratch: &mut DcaScratch,
) -> Result<CoreDcaOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let dims = dataset.schema().num_fairness();
    config.validate(dims)?;
    if dataset.is_empty() {
        return Err(crate::error::FairError::EmptyDataset);
    }

    let mut bonus = initial.unwrap_or_else(|| vec![0.0; dims]);
    assert_eq!(bonus.len(), dims, "initial bonus dimensionality mismatch");
    clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace_entries = Vec::new();
    let mut steps = 0_usize;
    let mut objects_scored = 0_usize;

    for &lr in &config.learning_rates {
        for _ in 0..config.iterations_per_rate {
            dataset.sample_indices_into(&mut rng, config.sample_size, &mut scratch.indices)?;
            let sample = dataset.view_of(scratch.indices.as_slice());
            objective.evaluate_into(
                &sample,
                ranker,
                &bonus,
                &mut scratch.eval,
                &mut scratch.direction,
            )?;
            let direction = &scratch.direction;
            debug_assert_eq!(direction.len(), dims);
            for (b, d) in bonus.iter_mut().zip(direction) {
                *b -= lr * d;
            }
            clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());
            objects_scored += sample.len();
            steps += 1;
            if trace {
                trace_entries.push(CoreTraceEntry {
                    step: steps - 1,
                    learning_rate: lr,
                    objective_norm: crate::metrics::norm(direction),
                    bonus: bonus.clone(),
                });
            }
        }
    }

    Ok(CoreDcaOutcome {
        bonus,
        steps,
        objects_scored,
        trace: trace_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dca::objective::TopKDisparity;
    use crate::metrics::{disparity_at_k, norm};
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::{effective_scores, WeightedSumRanker};
    use rand::Rng;

    /// Synthetic population where group members' scores are shifted down, so
    /// the uncorrected top-k underrepresents them.
    fn biased_dataset(n: u64, member_rate: f64, shift: f64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let member = rng.gen::<f64>() < member_rate;
                let base: f64 = rng.gen::<f64>() * 100.0;
                let score = if member { base - shift } else { base };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn disparity_with_bonus(dataset: &Dataset, bonus: &[f64], k: f64) -> f64 {
        let view = dataset.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, bonus));
        norm(&disparity_at_k(&view, &ranking, k).unwrap())
    }

    fn quick_config() -> DcaConfig {
        DcaConfig {
            sample_size: 200,
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 40,
            refinement_iterations: 0,
            seed: 7,
            ..DcaConfig::default()
        }
    }

    #[test]
    fn core_dca_reduces_disparity_on_biased_population() {
        let dataset = biased_dataset(4000, 0.3, 20.0, 11);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let before = disparity_with_bonus(&dataset, &[0.0], 0.2);
        let out =
            run_core_dca(&dataset, &ranker, &objective, &quick_config(), None, false).unwrap();
        let after = disparity_with_bonus(&dataset, &out.bonus, 0.2);
        assert!(
            before > 0.05,
            "baseline must actually be disparate: {before}"
        );
        assert!(
            after < before * 0.5,
            "DCA must at least halve disparity: {after} vs {before}"
        );
        assert!(
            out.bonus[0] > 0.0,
            "the disadvantaged group must receive a positive bonus"
        );
    }

    #[test]
    fn bonus_stays_non_negative() {
        let dataset = biased_dataset(2000, 0.3, 5.0, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.3);
        let out = run_core_dca(&dataset, &ranker, &objective, &quick_config(), None, true).unwrap();
        assert!(out.bonus.iter().all(|b| *b >= 0.0));
        assert!(out.trace.iter().all(|t| t.bonus.iter().all(|b| *b >= 0.0)));
    }

    #[test]
    fn caps_are_respected_at_every_step() {
        let dataset = biased_dataset(2000, 0.3, 50.0, 5);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut config = quick_config();
        config.caps = Some(BonusCaps::uniform(1, 3.0).unwrap());
        let out = run_core_dca(&dataset, &ranker, &objective, &config, None, true).unwrap();
        assert!(out.trace.iter().all(|t| t.bonus[0] <= 3.0 + 1e-12));
        assert!(out.bonus[0] <= 3.0 + 1e-12);
    }

    #[test]
    fn trace_has_one_entry_per_step_and_work_is_counted() {
        let dataset = biased_dataset(1000, 0.3, 10.0, 9);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let config = quick_config();
        let out = run_core_dca(&dataset, &ranker, &objective, &config, None, true).unwrap();
        assert_eq!(out.steps, config.core_steps());
        assert_eq!(out.trace.len(), config.core_steps());
        assert_eq!(out.objects_scored, config.core_steps() * config.sample_size);
    }

    #[test]
    fn initial_bonus_is_respected_and_clamped() {
        let dataset = biased_dataset(1000, 0.3, 10.0, 13);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut config = quick_config();
        config.learning_rates = vec![0.001];
        config.iterations_per_rate = 1;
        // Negative initial value must be clamped to zero before the first step.
        let out = run_core_dca(
            &dataset,
            &ranker,
            &objective,
            &config,
            Some(vec![-5.0]),
            true,
        )
        .unwrap();
        assert!(out.trace[0].bonus[0] >= 0.0);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let dataset = biased_dataset(1500, 0.25, 15.0, 21);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.1);
        let config = quick_config();
        let a = run_core_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
        let b = run_core_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
        assert_eq!(a.bonus, b.bonus);
    }

    #[test]
    fn different_seeds_may_differ_but_both_reduce_disparity() {
        let dataset = biased_dataset(3000, 0.3, 20.0, 17);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let before = disparity_with_bonus(&dataset, &[0.0], 0.2);
        for seed in [1, 2] {
            let mut config = quick_config();
            config.seed = seed;
            let out = run_core_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
            let after = disparity_with_bonus(&dataset, &out.bonus, 0.2);
            assert!(after < before, "seed {seed}: {after} vs {before}");
        }
    }

    #[test]
    fn empty_dataset_is_error() {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let dataset = Dataset::empty(schema);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        assert!(run_core_dca(&dataset, &ranker, &objective, &quick_config(), None, false).is_err());
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let dataset = biased_dataset(100, 0.3, 5.0, 1);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut config = quick_config();
        config.sample_size = 5;
        assert!(run_core_dca(&dataset, &ranker, &objective, &config, None, false).is_err());
    }
}
