//! DCA over the sharded column store — in memory or paged from disk.
//!
//! * [`run_full_dca_sharded`] — Full DCA whose per-step objective evaluation
//!   (scoring, selection, centroid accumulation) runs through the shard-wise
//!   parallel engine instead of one serial pass. For binary/dyadic fairness
//!   values the bonus trajectory is bit-for-bit the serial
//!   [`crate::dca::run_full_dca`] trajectory at every shard size (see the
//!   determinism notes on [`crate::shard`]).
//! * [`run_core_dca_sharded`] — Core DCA (Algorithm 1) drawing each step's
//!   sample **per shard**: quotas are apportioned proportionally and every
//!   shard samples its own rows with an RNG stream split deterministically
//!   off the step seed ([`crate::shard::shard_seed`]), so shards can sample
//!   independently — the building block for distributed DCA, where no node
//!   ever sees another node's rows. The sampled rows are gathered into a
//!   reused scratch block and evaluated with the ordinary [`Objective`]s.
//!
//! The sampled variant draws a *different* (but equally distributed,
//! seed-deterministic) sample stream than the serial
//! [`crate::dca::run_core_dca`], so their trajectories are not comparable
//! step for step; each is reproducible under its own seed.

use crate::attributes::SchemaRef;
use crate::dataset::Dataset;
use crate::dca::config::DcaConfig;
use crate::dca::control::RunControl;
use crate::dca::core::{clamp_bonus, CoreDcaOutcome, CoreTraceEntry};
use crate::dca::full::FullDcaOutcome;
use crate::dca::objective::Objective;
use crate::dca::scratch::DcaScratch;
use crate::error::{FairError, Result};
use crate::metrics::sharded::ShardedEvalScratch;
use crate::metrics::{sharded, LogDiscountConfig};
use crate::ranking::Ranker;
use crate::shard::ShardSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An [`Objective`] that can also be evaluated over any [`ShardSource`]
/// through the shard-wise engine — in-memory or paged from disk.
/// Implementations must compute the same mathematical quantity as their
/// serial `evaluate_into`; the built-in objectives delegate to
/// [`crate::metrics::sharded`].
pub trait ShardedObjective: Objective {
    /// Evaluate the measure over the whole sharded cohort under `bonus`,
    /// writing one entry per fairness attribute into `out`.
    ///
    /// # Errors
    /// Returns an error on empty datasets, invalid configurations, or missing
    /// labels (objective-dependent).
    fn evaluate_sharded<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut ShardedEvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()>;
}

impl ShardedObjective for crate::dca::objective::TopKDisparity {
    fn evaluate_sharded<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut ShardedEvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        sharded::disparity_at_k_into(data, ranker, bonus, self.k, scratch, out)
    }
}

impl ShardedObjective for crate::dca::objective::LogDiscountedObjective {
    fn evaluate_sharded<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        _scratch: &mut ShardedEvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let config: &LogDiscountConfig = &self.config;
        *out = sharded::log_discounted_disparity(data, ranker, bonus, config)?;
        Ok(())
    }
}

impl ShardedObjective for crate::dca::objective::ScaledDisparateImpact {
    fn evaluate_sharded<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        _scratch: &mut ShardedEvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        *out = sharded::scaled_disparate_impact_at_k(data, ranker, bonus, self.k)?;
        Ok(())
    }
}

impl ShardedObjective for crate::dca::objective::FprDifferenceObjective {
    fn evaluate_sharded<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        _scratch: &mut ShardedEvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        *out = sharded::fpr_difference_at_k(data, ranker, bonus, self.k)?;
        Ok(())
    }
}

/// Run Full DCA with every step's whole-cohort evaluation on the shard-wise
/// engine. The descent itself is [`crate::dca::full`]'s shared driver — the
/// exact loop the serial [`crate::dca::run_full_dca`] executes — so the two
/// trajectories can only differ through the objective evaluation.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_full_dca_sharded<S, R, O>(
    data: &S,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
) -> Result<FullDcaOutcome>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
    O: ShardedObjective + ?Sized,
{
    run_full_dca_sharded_controlled(
        data,
        ranker,
        objective,
        config,
        initial,
        trace,
        &RunControl::new(),
    )
}

/// [`run_full_dca_sharded`] under a [`RunControl`]: the identical descent
/// loop, plus a cancellation check at every step boundary and a progress
/// report after every completed step. A run that is never cancelled produces
/// the bit-identical trajectory of the uncontrolled runner — which is what
/// lets a serving layer expose background Full-DCA jobs without forking the
/// algorithm.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, objective
/// failures, or [`FairError::Cancelled`] when `control` is cancelled mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_full_dca_sharded_controlled<S, R, O>(
    data: &S,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    control: &RunControl,
) -> Result<FullDcaOutcome>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
    O: ShardedObjective + ?Sized,
{
    let mut scratch = ShardedEvalScratch::new();
    crate::dca::full::run_full_descent(
        data.schema().num_fairness(),
        data.len(),
        config,
        initial,
        trace,
        control,
        |bonus, out| {
            // Phase attribution wraps the whole shard-sweep evaluation (one
            // scope per step, outside every kernel); inert unless the caller
            // installed a job profile, and the clock never feeds back into
            // the descent, so trajectories stay bit-identical.
            let _score = crate::obs::profile::scope(crate::obs::Phase::Score);
            objective.evaluate_sharded(data, ranker, bonus, &mut scratch, out)
        },
    )
}

/// Run Core DCA (Algorithm 1) with per-shard sampling: each step draws its
/// sample shard by shard under a deterministically split seed stream, gathers
/// the sampled rows into a reused contiguous block, and evaluates the
/// ordinary sampled objective on it.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, or objective
/// failures.
pub fn run_core_dca_sharded<S, R, O>(
    data: &S,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
) -> Result<CoreDcaOutcome>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    run_core_dca_sharded_controlled(
        data,
        ranker,
        objective,
        config,
        initial,
        trace,
        &RunControl::new(),
    )
}

/// [`run_core_dca_sharded`] under a [`RunControl`]: the identical per-shard
/// sampled descent, plus a cancellation check at every step boundary and a
/// progress report after every completed step. Never-cancelled runs draw the
/// identical seeded sample stream and produce the bit-identical trajectory.
///
/// # Errors
/// Returns an error for invalid configurations, empty datasets, objective
/// failures, or [`FairError::Cancelled`] when `control` is cancelled mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_core_dca_sharded_controlled<S, R, O>(
    data: &S,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    control: &RunControl,
) -> Result<CoreDcaOutcome>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let mut sample_indices = Vec::new();
    run_core_dca_gathered(
        data.schema(),
        data.len(),
        ranker,
        objective,
        config,
        initial,
        trace,
        control,
        |step_seed, gather| {
            // One sample-phase scope per step covers the draw and the
            // shard-run gather; page-ins it triggers open nested scopes that
            // subtract themselves from this one on the same thread.
            let _sample = crate::obs::profile::scope(crate::obs::Phase::Sample);
            data.sample_indices_into(step_seed, config.sample_size, &mut sample_indices)?;
            // The sample comes back grouped by shard, so each run of indices
            // pages its shard in exactly once (a cache hit per run for the
            // in-memory source, one decode per run for a paged store).
            crate::shard::for_each_shard_run(
                data,
                &sample_indices,
                |&g| g / data.shard_size(),
                |view, run| {
                    let d = view.data();
                    for &g in run {
                        gather.push_row(d.row(g - view.offset()));
                    }
                },
            );
            Ok(())
        },
    )
}

/// The one Core-DCA descent loop over a caller-supplied **gather step**: the
/// master RNG emits one `step_seed` per step, `gather_step` fills the cleared
/// scratch dataset with that step's sample rows, and the ordinary sampled
/// [`Objective`] is evaluated on the gathered block. The local sharded runner
/// ([`run_core_dca_sharded`]) and distributed coordinators both execute
/// exactly this driver, differing only in where the gather fetches rows —
/// which is why a coordinator that concatenates each worker's
/// [`crate::shard::sample_indices_range_into`] slice in ascending shard order
/// reproduces the local trajectory bit for bit.
///
/// # Errors
/// Returns an error for invalid configurations, empty cohorts, gather or
/// objective failures, or a cancellation requested through `control`.
#[allow(clippy::too_many_arguments)]
pub fn run_core_dca_gathered<R, O>(
    schema: &SchemaRef,
    cohort_len: usize,
    ranker: &R,
    objective: &O,
    config: &DcaConfig,
    initial: Option<Vec<f64>>,
    trace: bool,
    control: &RunControl,
    mut gather_step: impl FnMut(u64, &mut Dataset) -> Result<()>,
) -> Result<CoreDcaOutcome>
where
    R: Ranker + ?Sized,
    O: Objective + ?Sized,
{
    let dims = schema.num_fairness();
    config.validate(dims)?;
    if cohort_len == 0 {
        return Err(FairError::EmptyDataset);
    }

    let mut bonus = initial.unwrap_or_else(|| vec![0.0; dims]);
    assert_eq!(bonus.len(), dims, "initial bonus dimensionality mismatch");
    clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());

    // The master stream only emits one step seed per step; every shard's
    // sampling RNG is split off that seed (shard_seed), so the sample a shard
    // draws is independent of how many other shards exist on this node — or
    // of which node holds them.
    let mut master = StdRng::seed_from_u64(config.seed);
    let mut gather = Dataset::with_capacity(schema.clone(), config.sample_size);
    let mut scratch = DcaScratch::new();
    let mut trace_entries = Vec::new();
    let mut steps = 0_usize;
    let mut objects_scored = 0_usize;

    let total_steps = config.core_steps();
    for &lr in &config.learning_rates {
        for _ in 0..config.iterations_per_rate {
            control.checkpoint()?;
            let step_seed: u64 = master.gen();
            gather.clear();
            gather_step(step_seed, &mut gather)?;
            let sample = gather.full_view();
            {
                let _score = crate::obs::profile::scope(crate::obs::Phase::Score);
                objective.evaluate_into(
                    &sample,
                    ranker,
                    &bonus,
                    &mut scratch.eval,
                    &mut scratch.direction,
                )?;
            }
            let direction = &scratch.direction;
            debug_assert_eq!(direction.len(), dims);
            for (b, d) in bonus.iter_mut().zip(direction) {
                *b -= lr * d;
            }
            clamp_bonus(&mut bonus, config.polarity, config.caps.as_ref());
            objects_scored += sample.len();
            steps += 1;
            if trace {
                trace_entries.push(CoreTraceEntry {
                    step: steps - 1,
                    learning_rate: lr,
                    objective_norm: crate::metrics::norm(direction),
                    bonus: bonus.clone(),
                });
            }
            control.report(steps, total_steps);
        }
    }

    Ok(CoreDcaOutcome {
        bonus,
        steps,
        objects_scored,
        trace: trace_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dca::full::run_full_dca;
    use crate::dca::objective::TopKDisparity;
    use crate::metrics::norm;
    use crate::object::DataObject;
    use crate::ranking::WeightedSumRanker;
    use crate::shard::ShardedDataset;

    /// Biased cohort whose scores and fairness values all sit on a dyadic
    /// grid, so every summation order produces identical bits.
    fn dyadic_biased(n: u64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let member = rng.gen::<f64>() < 0.3;
                // Scores on a 1/64 grid in [0, 128).
                let base = f64::from(rng.gen_range(0_u32..8192)) / 64.0;
                let score = if member { base - 16.0 } else { base };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn config() -> DcaConfig {
        DcaConfig {
            sample_size: 150,
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 15,
            refinement_iterations: 0,
            seed: 11,
            ..DcaConfig::default()
        }
    }

    #[test]
    fn sharded_full_dca_matches_serial_bitwise_across_shard_sizes() {
        let flat = dyadic_biased(700, 3);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let serial = run_full_dca(&flat, &ranker, &objective, &cfg, None, true).unwrap();
        for shard_size in [1, 7, 700, 65_536] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let sharded =
                run_full_dca_sharded(&data, &ranker, &objective, &cfg, None, true).unwrap();
            let a: Vec<u64> = serial.bonus.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = sharded.bonus.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "shard size {shard_size}");
            assert_eq!(serial.steps, sharded.steps);
            assert_eq!(serial.objects_scored, sharded.objects_scored);
            for (s, t) in serial.trace.iter().zip(&sharded.trace) {
                assert_eq!(s.bonus, t.bonus, "shard size {shard_size} step {}", s.step);
            }
        }
    }

    #[test]
    fn sharded_core_dca_reduces_disparity_and_is_reproducible() {
        let flat = dyadic_biased(3000, 5);
        let data = ShardedDataset::from_dataset(&flat, 256).unwrap();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut cfg = config();
        cfg.iterations_per_rate = 40;
        let a = run_core_dca_sharded(&data, &ranker, &objective, &cfg, None, false).unwrap();
        let b = run_core_dca_sharded(&data, &ranker, &objective, &cfg, None, false).unwrap();
        assert_eq!(a.bonus, b.bonus, "same seed, same trajectory");
        assert_eq!(a.objects_scored, cfg.core_steps() * cfg.sample_size);

        let before = sharded::disparity_at_k(&data, &ranker, &[0.0], 0.2).unwrap();
        let after = sharded::disparity_at_k(&data, &ranker, &a.bonus, 0.2).unwrap();
        assert!(
            norm(&after) < norm(&before) * 0.5,
            "sharded-sampled DCA must reduce disparity: {} -> {}",
            norm(&before),
            norm(&after)
        );
        assert!(a.bonus[0] > 0.0);
    }

    #[test]
    fn sharded_core_dca_shard_layout_changes_samples_but_not_convergence() {
        let flat = dyadic_biased(2000, 9);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let mut cfg = config();
        cfg.iterations_per_rate = 40;
        for shard_size in [64, 500] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let out = run_core_dca_sharded(&data, &ranker, &objective, &cfg, None, false).unwrap();
            let after = sharded::disparity_at_k(&data, &ranker, &out.bonus, 0.2).unwrap();
            assert!(
                norm(&after) < 0.1,
                "shard size {shard_size}: residual {}",
                norm(&after)
            );
        }
    }

    #[test]
    fn controlled_runs_match_uncontrolled_and_report_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let flat = dyadic_biased(600, 21);
        let data = ShardedDataset::from_dataset(&flat, 64).unwrap();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();

        let steps_seen = Arc::new(AtomicUsize::new(0));
        let captured = steps_seen.clone();
        let total = cfg.core_steps();
        let control = RunControl::with_progress(move |p| {
            assert_eq!(p.total_steps, total);
            captured.store(p.step, Ordering::Relaxed);
        });

        let plain = run_full_dca_sharded(&data, &ranker, &objective, &cfg, None, true).unwrap();
        let controlled =
            run_full_dca_sharded_controlled(&data, &ranker, &objective, &cfg, None, true, &control)
                .unwrap();
        assert_eq!(plain.bonus, controlled.bonus, "identical trajectory");
        assert_eq!(plain.trace.len(), controlled.trace.len());
        assert_eq!(steps_seen.load(Ordering::Relaxed), total);

        let plain = run_core_dca_sharded(&data, &ranker, &objective, &cfg, None, false).unwrap();
        let controlled = run_core_dca_sharded_controlled(
            &data,
            &ranker,
            &objective,
            &cfg,
            None,
            false,
            &RunControl::new(),
        )
        .unwrap();
        assert_eq!(plain.bonus, controlled.bonus, "identical sample stream");
    }

    #[test]
    fn cancellation_stops_both_runners_at_a_step_boundary() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Weak};

        let flat = dyadic_biased(500, 17);
        let data = ShardedDataset::from_dataset(&flat, 64).unwrap();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();

        // Pre-cancelled: not a single step runs.
        let control = RunControl::new();
        control.cancel();
        assert!(matches!(
            run_full_dca_sharded_controlled(
                &data, &ranker, &objective, &cfg, None, false, &control
            ),
            Err(FairError::Cancelled)
        ));
        assert!(matches!(
            run_core_dca_sharded_controlled(
                &data, &ranker, &objective, &cfg, None, false, &control
            ),
            Err(FairError::Cancelled)
        ));

        // Mid-run: a progress hook that cancels its own control at step 3 —
        // the run must stop at the next step boundary, not run to completion.
        let last_step = Arc::new(AtomicUsize::new(0));
        let seen = last_step.clone();
        let control = Arc::new_cyclic(|weak: &Weak<RunControl>| {
            let weak = weak.clone();
            RunControl::with_progress(move |p| {
                seen.store(p.step, Ordering::Relaxed);
                if p.step == 3 {
                    if let Some(c) = weak.upgrade() {
                        c.cancel();
                    }
                }
            })
        });
        match run_core_dca_sharded_controlled(
            &data, &ranker, &objective, &cfg, None, false, &control,
        ) {
            Err(FairError::Cancelled) => {}
            other => panic!("expected mid-run cancellation, got {other:?}"),
        }
        assert_eq!(
            last_step.load(Ordering::Relaxed),
            3,
            "exactly 3 steps run before the cancellation takes effect"
        );
    }

    /// A coordinator gathering each step's sample from per-range workers
    /// (`sample_indices_range_into`, concatenated in ascending range order)
    /// reproduces the single-node sharded trajectory bit for bit.
    #[test]
    fn gathered_core_dca_over_range_samples_matches_the_sharded_runner_bitwise() {
        let flat = dyadic_biased(900, 13);
        let data = ShardedDataset::from_dataset(&flat, 64).unwrap();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        let cfg = config();
        let local = run_core_dca_sharded(&data, &ranker, &objective, &cfg, None, true).unwrap();

        let cuts = [0, 3, 5, data.num_shards()];
        let mut indices = Vec::new();
        let distributed = run_core_dca_gathered(
            data.schema(),
            data.len(),
            &ranker,
            &objective,
            &cfg,
            None,
            true,
            &RunControl::new(),
            |step_seed, gather| {
                for range in cuts.windows(2) {
                    crate::shard::sample_indices_range_into(
                        &data,
                        step_seed,
                        cfg.sample_size,
                        range[0]..range[1],
                        &mut indices,
                    )?;
                    crate::shard::for_each_shard_run(
                        &data,
                        &indices,
                        |&g| g / data.shard_size(),
                        |view, run| {
                            let d = view.data();
                            for &g in run {
                                gather.push_row(d.row(g - view.offset()));
                            }
                        },
                    );
                }
                Ok(())
            },
        )
        .unwrap();
        let a: Vec<u64> = local.bonus.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = distributed.bonus.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "range-gathered Core DCA is bit-identical");
        for (s, t) in local.trace.iter().zip(&distributed.trace) {
            assert_eq!(s.bonus, t.bonus, "step {}", s.step);
        }
    }

    #[test]
    fn sharded_runs_reject_empty_and_invalid_inputs() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let empty = ShardedDataset::with_shard_size(schema, 8).unwrap();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(0.2);
        assert!(run_full_dca_sharded(&empty, &ranker, &objective, &config(), None, false).is_err());
        assert!(run_core_dca_sharded(&empty, &ranker, &objective, &config(), None, false).is_err());
        let flat = dyadic_biased(100, 1);
        let data = ShardedDataset::from_dataset(&flat, 16).unwrap();
        let mut bad = config();
        bad.sample_size = 5;
        assert!(run_core_dca_sharded(&data, &ranker, &objective, &bad, None, false).is_err());
    }
}
