//! Configuration of the Disparity Compensation Algorithm.

use crate::bonus::{BonusCaps, BonusPolarity};
use crate::dataset::Dataset;
use crate::error::{FairError, Result};
use fair_opt::AdamConfig;

/// Minimum sample size for the Central Limit Theorem to apply — the paper uses
/// the conventional value of 30 ("this is generally recognized to be around
/// 30").
pub const CLT_MINIMUM: usize = 30;

/// Full configuration of a DCA run (Core DCA plus the refinement step).
#[derive(Debug, Clone, PartialEq)]
pub struct DcaConfig {
    /// Number of objects drawn per step (the paper uses 500 for the school
    /// dataset so the rarest 10% group still contributes ~50 objects).
    pub sample_size: usize,
    /// Decreasing learning-rate ladder for Core DCA (paper: `[1.0, 0.1]`).
    pub learning_rates: Vec<f64>,
    /// Iterations per learning rate in Core DCA (paper: 100).
    pub iterations_per_rate: usize,
    /// Iterations of the Adam-driven refinement step (paper: 100; set to 0 to
    /// run Core DCA only).
    pub refinement_iterations: usize,
    /// Adam hyper-parameters for the refinement step.
    pub adam: AdamConfig,
    /// Number of final iterates averaged by the refinement step ("the rolling
    /// average of the last 100 points").
    pub rolling_window: usize,
    /// Bonus-point granularity for the final rounding (paper: 0.5). `None`
    /// disables rounding.
    pub granularity: Option<f64>,
    /// Sign policy for the bonus points.
    pub polarity: BonusPolarity,
    /// Optional per-dimension magnitude caps, applied at every step
    /// (Section VI-A4).
    pub caps: Option<BonusCaps>,
    /// Seed for the sampling RNG, for reproducible runs.
    pub seed: u64,
}

impl Default for DcaConfig {
    fn default() -> Self {
        Self {
            sample_size: 500,
            learning_rates: vec![1.0, 0.1],
            iterations_per_rate: 100,
            refinement_iterations: 100,
            adam: AdamConfig::default(),
            rolling_window: 100,
            granularity: Some(0.5),
            polarity: BonusPolarity::NonNegative,
            caps: None,
            seed: 0xDCA,
        }
    }
}

impl DcaConfig {
    /// The exact experimental setting of Section V-B: sample size 500,
    /// learning rates 1.0 then 0.1 for 100 rounds each, 100 Adam refinement
    /// rounds, rolling average of the last 100 iterates, 0.5-point rounding.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Validate the configuration against a dataset (dimension-independent
    /// checks plus the CLT sample-size requirement).
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] for empty ladders, zero iteration
    /// counts, non-positive rates, too-small samples, or bad granularity.
    pub fn validate(&self, dims: usize) -> Result<()> {
        if self.sample_size < CLT_MINIMUM {
            return Err(FairError::InvalidConfig {
                reason: format!(
                    "sample size {} is below the CLT minimum of {CLT_MINIMUM}",
                    self.sample_size
                ),
            });
        }
        if self.learning_rates.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "learning-rate ladder cannot be empty".into(),
            });
        }
        if self
            .learning_rates
            .iter()
            .any(|r| !r.is_finite() || *r <= 0.0)
        {
            return Err(FairError::InvalidConfig {
                reason: "learning rates must be positive and finite".into(),
            });
        }
        if self.iterations_per_rate == 0 {
            return Err(FairError::InvalidConfig {
                reason: "iterations per learning rate must be positive".into(),
            });
        }
        if self.rolling_window == 0 {
            return Err(FairError::InvalidConfig {
                reason: "rolling window must be positive".into(),
            });
        }
        if let Some(g) = self.granularity {
            if !(g.is_finite() && g > 0.0) {
                return Err(FairError::InvalidConfig {
                    reason: format!("granularity must be positive and finite, got {g}"),
                });
            }
        }
        if let Some(caps) = &self.caps {
            if caps.dims() != dims {
                return Err(FairError::DimensionMismatch {
                    what: "bonus caps",
                    expected: dims,
                    actual: caps.dims(),
                });
            }
        }
        Ok(())
    }

    /// The paper's sample-size rule (Section IV-D): large enough that both the
    /// selected set and the rarest fairness group are expected to contribute
    /// at least [`CLT_MINIMUM`] objects, i.e. `CLT_MINIMUM * max(1/k, 1/r)`.
    ///
    /// # Errors
    /// Returns an error for `k` outside `(0, 1]` or an empty dataset.
    pub fn recommended_sample_size(dataset: &Dataset, k: f64) -> Result<usize> {
        if !(k > 0.0 && k <= 1.0) {
            return Err(FairError::InvalidSelectionFraction { k });
        }
        if dataset.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let r = dataset
            .rarest_group_frequency()
            .max(1.0 / dataset.len() as f64);
        let needed = (CLT_MINIMUM as f64 * (1.0 / k).max(1.0 / r)).ceil() as usize;
        Ok(needed.min(dataset.len()).max(CLT_MINIMUM))
    }

    /// Total number of Core DCA steps implied by this configuration.
    #[must_use]
    pub fn core_steps(&self) -> usize {
        self.learning_rates.len() * self.iterations_per_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::object::DataObject;

    #[test]
    fn default_matches_paper_settings() {
        let c = DcaConfig::paper_default();
        assert_eq!(c.sample_size, 500);
        assert_eq!(c.learning_rates, vec![1.0, 0.1]);
        assert_eq!(c.iterations_per_rate, 100);
        assert_eq!(c.refinement_iterations, 100);
        assert_eq!(c.granularity, Some(0.5));
        assert_eq!(c.core_steps(), 200);
        assert!(c.validate(4).is_ok());
    }

    #[test]
    fn validation_catches_bad_settings() {
        let c = DcaConfig {
            sample_size: 10,
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            learning_rates: vec![],
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            learning_rates: vec![-1.0],
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            iterations_per_rate: 0,
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            granularity: Some(0.0),
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            rolling_window: 0,
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err());
        let c = DcaConfig {
            caps: Some(BonusCaps::uniform(3, 10.0).unwrap()),
            ..DcaConfig::default()
        };
        assert!(c.validate(2).is_err(), "cap dimensionality must match");
        assert!(c.validate(3).is_ok());
    }

    #[test]
    fn recommended_sample_size_follows_max_rule() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        // 1000 objects, 10% group members.
        let objects = (0..1000_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![if i % 10 == 0 { 1.0 } else { 0.0 }],
                    None,
                )
            })
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        // k = 0.05 -> 1/k = 20 > 1/r = 10 -> 30 * 20 = 600.
        assert_eq!(DcaConfig::recommended_sample_size(&d, 0.05).unwrap(), 600);
        // k = 0.5 -> 1/k = 2 < 1/r = 10 -> 30 * 10 = 300.
        assert_eq!(DcaConfig::recommended_sample_size(&d, 0.5).unwrap(), 300);
        assert!(DcaConfig::recommended_sample_size(&d, 0.0).is_err());
    }

    #[test]
    fn recommended_sample_size_clamps_to_dataset() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..50_u64)
            .map(|i| DataObject::new_unchecked(i, vec![i as f64], vec![1.0], None))
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        assert_eq!(DcaConfig::recommended_sample_size(&d, 0.01).unwrap(), 50);
    }
}
