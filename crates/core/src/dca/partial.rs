//! Partial-reduce kernels for **distributed** disparity evaluation — the
//! compute half of a multi-node DCA coordinator.
//!
//! A worker that owns a contiguous shard range computes, per shard, exactly
//! the quantities the one-sweep [`crate::metrics::sharded::MetricPlan`]
//! derives for that shard: the fairness column sums and the shard's
//! top-`count` selection candidates (score, global position, fairness row).
//! Candidates are then pruned **range-wide** to the best `count` — the global
//! top-`count` can contain at most `count` rows from any range, so the pruned
//! set still covers every row that can be selected, while the wire payload
//! stays `O(count)` per worker instead of `O(count × shards)`.
//!
//! A coordinator holding partials for **every** shard combines them in shard
//! order with [`combine_disparity_partials`]: the population centroid folds
//! per-shard sums in ascending shard order, the selection re-partitions the
//! candidate keys under the same strict total order as
//! [`crate::ranking::sharded::top_m`], and the selection centroid accumulates
//! fairness rows in rank order — each step the identical floating-point
//! sequence the local sharded evaluator executes, so the distributed
//! disparity (and therefore the Full-DCA trajectory driven by it through
//! [`crate::dca::full::run_full_descent`]) is **bit-identical** to
//! [`crate::metrics::sharded::disparity_at_k_into`] on one node.
//!
//! Partials are pure functions of `(cohort, bonus, count, shard range)` —
//! no hidden state, no RNG — which is what makes coordinator retries
//! idempotent: recomputing a range after a timeout cannot change the result,
//! and the combine rejects a shard supplied twice outright.

use crate::error::{FairError, Result};
use crate::parallel::parallel_map;
use crate::ranking::sharded::descending_key;
use crate::ranking::Ranker;
use crate::shard::ShardSource;
use std::ops::Range;

/// One shard's contribution to a distributed disparity evaluation.
///
/// `scores`/`positions`/`fairness` describe the shard's surviving selection
/// candidates in canonical rank order (descending score, ties by ascending
/// position); `fairness` is row-major, `scores.len() × dims`. `fair_sums` and
/// `rows` always describe the **whole** shard, whatever survived pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct DisparityPartial {
    /// Global shard index.
    pub shard: usize,
    /// Rows in the shard.
    pub rows: usize,
    /// Per-dimension fairness column sums over the whole shard.
    pub fair_sums: Vec<f64>,
    /// Candidate effective scores, best first.
    pub scores: Vec<f64>,
    /// Candidate global row positions, aligned with `scores`.
    pub positions: Vec<usize>,
    /// Candidate fairness rows, row-major, aligned with `scores`.
    pub fairness: Vec<f64>,
}

/// Per-shard sweep output before range-level pruning.
struct ShardPass {
    shard: usize,
    rows: usize,
    fair_sums: Vec<f64>,
    /// `(descending_key(score), global position)` — the canonical sort key.
    keys: Vec<(u64, u64)>,
    scores: Vec<f64>,
    fairness: Vec<f64>,
}

/// Compute the disparity partials for the shards in `shards` under `bonus`,
/// with selection candidates pruned range-wide to the global selection size
/// `count`.
///
/// The per-row score kernel (`base + Σ fairness·bonus`), the per-shard sum
/// accumulation, and the candidate partition all mirror the one-sweep metric
/// plan and [`crate::ranking::sharded::top_m`] exactly — see the module docs
/// for why that makes the combined result bit-identical to local evaluation.
///
/// # Errors
/// Returns [`FairError::EmptyDataset`] on an empty cohort and
/// [`FairError::InvalidConfig`] when the range exceeds the layout or `count`
/// is not in `1..=len`.
///
/// # Panics
/// Panics if `bonus.len()` differs from the schema's fairness dimensionality
/// (the scoring-kernel contract).
pub fn disparity_partials<S, R>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    count: usize,
    shards: Range<usize>,
) -> Result<Vec<DisparityPartial>>
where
    S: ShardSource + ?Sized,
    R: Ranker + ?Sized,
{
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if shards.start > shards.end || shards.end > data.num_shards() {
        return Err(FairError::InvalidConfig {
            reason: format!(
                "shard range {}..{} exceeds the {}-shard layout",
                shards.start,
                shards.end,
                data.num_shards()
            ),
        });
    }
    if count == 0 || count > data.len() {
        return Err(FairError::InvalidConfig {
            reason: format!(
                "selection count {count} must be in 1..={} for this cohort",
                data.len()
            ),
        });
    }
    let dims = data.schema().num_fairness();
    assert_eq!(bonus.len(), dims, "bonus vector dimensionality mismatch");
    let nf = data.schema().num_features();
    let linear = ranker
        .linear_weights()
        .filter(|w| !w.is_empty() && w.len() == nf);

    let indices: Vec<usize> = shards.collect();
    let mut passes: Vec<ShardPass> = parallel_map(&indices, |&i| {
        data.with_shard(i, |shard| {
            let d = shard.data();
            let offset = shard.offset();
            let n = d.len();
            // The fused score pass of `MetricPlan::evaluate_with`, verbatim:
            // the same blocked kernel passes for linear rankers, the same
            // per-row `base + increment` fallback otherwise.
            let mut scores = Vec::with_capacity(n);
            if let Some(w) = linear {
                crate::kernel::dot_rows_into(d.features_matrix(), nf, w, &mut scores);
                crate::kernel::add_dot_rows_into(d.fairness_matrix(), dims, bonus, &mut scores);
            } else {
                scores.extend((0..n).map(|i| {
                    let b = match ranker.feature_score(d.feature_row(i)) {
                        Some(score) => score,
                        None => ranker.base_score(d.row(i)),
                    };
                    let increment = crate::kernel::dot(d.fairness_row(i), bonus);
                    b + increment
                }));
            }
            let mut fair_sums = vec![0.0_f64; dims];
            if dims > 0 {
                crate::kernel::col_sums_into(d.fairness_matrix(), dims, &mut fair_sums);
            }
            // Per-shard candidate selection, as `top_m`'s pruning path: keep
            // the shard's own top min(count, n) under the strict total order.
            let mut keys: Vec<(u64, u64)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (descending_key(s), (offset + i) as u64))
                .collect();
            let keep = count.min(n);
            if keep < keys.len() {
                keys.select_nth_unstable(keep);
                keys.truncate(keep);
            }
            keys.sort_unstable();
            let mut cand_scores = Vec::with_capacity(keys.len());
            let mut fairness = Vec::with_capacity(keys.len() * dims);
            for &(_, pos) in &keys {
                let local = pos as usize - offset;
                cand_scores.push(scores[local]);
                fairness.extend_from_slice(d.fairness_row(local));
            }
            ShardPass {
                shard: i,
                rows: n,
                fair_sums,
                keys,
                scores: cand_scores,
                fairness,
            }
        })
    });

    // Range-wide prune: of all per-shard candidates, only the range's best
    // `count` can appear in the global selection. Same partition as `top_m`'s
    // merge, restricted to this range.
    let total: usize = passes.iter().map(|p| p.keys.len()).sum();
    if count < total {
        let mut all: Vec<((u64, u64), (u32, u32))> = Vec::with_capacity(total);
        for (slot, pass) in passes.iter().enumerate() {
            for (idx, &key) in pass.keys.iter().enumerate() {
                all.push((key, (slot as u32, idx as u32)));
            }
        }
        all.select_nth_unstable(count);
        all.truncate(count);
        let mut keep: Vec<Vec<u32>> = vec![Vec::new(); passes.len()];
        for &(_, (slot, idx)) in &all {
            keep[slot as usize].push(idx);
        }
        for (pass, mut kept) in passes.iter_mut().zip(keep) {
            // Candidate lists are already in (key, position) order, so
            // keeping ascending indices preserves the canonical order.
            kept.sort_unstable();
            let dims = pass.fair_sums.len();
            let mut keys = Vec::with_capacity(kept.len());
            let mut scores = Vec::with_capacity(kept.len());
            let mut fairness = Vec::with_capacity(kept.len() * dims);
            for &idx in &kept {
                let idx = idx as usize;
                keys.push(pass.keys[idx]);
                scores.push(pass.scores[idx]);
                fairness.extend_from_slice(&pass.fairness[idx * dims..(idx + 1) * dims]);
            }
            pass.keys = keys;
            pass.scores = scores;
            pass.fairness = fairness;
        }
    }

    Ok(passes
        .into_iter()
        .map(|p| DisparityPartial {
            shard: p.shard,
            rows: p.rows,
            fair_sums: p.fair_sums,
            scores: p.scores,
            positions: p.keys.iter().map(|&(_, pos)| pos as usize).collect(),
            fairness: p.fairness,
        })
        .collect())
}

/// Combine partials covering **every** shard of a `total_rows`-row cohort
/// into the disparity vector at selection size `count`, written into `out` —
/// bit-identical to [`crate::metrics::sharded::disparity_at_k_into`] at the
/// matching `k` (see the module docs).
///
/// Partials may arrive in any order; they are folded in ascending shard
/// order. A shard that is missing, supplied twice (a double-counted retry),
/// or internally inconsistent is an [`FairError::InvalidConfig`] — the
/// combine refuses to produce a silently wrong vector.
///
/// # Errors
/// Returns [`FairError::InvalidConfig`] on coverage or shape violations and
/// [`FairError::EmptyDataset`] when `count == 0`.
pub fn combine_disparity_partials(
    total_rows: usize,
    dims: usize,
    count: usize,
    partials: &[DisparityPartial],
    out: &mut Vec<f64>,
) -> Result<()> {
    if count == 0 {
        return Err(FairError::EmptyDataset);
    }
    let invalid = |reason: String| FairError::InvalidConfig { reason };
    let mut order: Vec<&DisparityPartial> = partials.iter().collect();
    order.sort_by_key(|p| p.shard);
    for (expected, p) in order.iter().enumerate() {
        if p.shard < expected {
            return Err(invalid(format!(
                "shard {} supplied twice — a retry double-counted a range",
                p.shard
            )));
        }
        if p.shard > expected {
            return Err(invalid(format!("no partial covers shard {expected}")));
        }
        if p.fair_sums.len() != dims
            || p.positions.len() != p.scores.len()
            || p.fairness.len() != p.scores.len() * dims
        {
            return Err(invalid(format!("malformed partial for shard {}", p.shard)));
        }
    }
    let rows: usize = order.iter().map(|p| p.rows).sum();
    if rows != total_rows {
        return Err(invalid(format!(
            "partials cover {rows} rows, cohort has {total_rows}"
        )));
    }
    if count > total_rows {
        return Err(invalid(format!(
            "selection count {count} exceeds the {total_rows}-row cohort"
        )));
    }

    // Population centroid: per-shard sums folded in ascending shard order,
    // divided once — exactly the one-sweep plan's combine.
    let mut pop_sums = vec![0.0_f64; dims];
    for p in &order {
        crate::kernel::add_row(&mut pop_sums, &p.fair_sums);
    }
    let pop: Vec<f64> = pop_sums.iter().map(|s| s / total_rows as f64).collect();

    // Global selection: re-key every candidate (scores crossed the wire
    // bit-exactly, so the keys are the keys the worker computed) and
    // partition + sort under the same strict total order as `top_m`.
    let mut candidates: Vec<((u64, u64), (u32, u32))> = Vec::new();
    for (slot, p) in order.iter().enumerate() {
        for (idx, (&score, &pos)) in p.scores.iter().zip(&p.positions).enumerate() {
            candidates.push((
                (descending_key(score), pos as u64),
                (slot as u32, idx as u32),
            ));
        }
    }
    if candidates.len() < count {
        return Err(invalid(format!(
            "{} candidates for a selection of {count} — partials were over-pruned",
            candidates.len()
        )));
    }
    if count < candidates.len() {
        candidates.select_nth_unstable(count);
        candidates.truncate(count);
    }
    candidates.sort_unstable();

    // Selection centroid accumulated in rank order, then the subtraction —
    // the disparity measure phase, verbatim: the same kernel walk over the
    // same row sequence as the plan's retained-row accumulation.
    out.clear();
    out.resize(dims, 0.0);
    if dims > 0 {
        crate::kernel::col_sums_rows_into(
            dims,
            candidates.iter().map(|&(_, (slot, idx))| {
                let p = order[slot as usize];
                let idx = idx as usize;
                &p.fairness[idx * dims..(idx + 1) * dims]
            }),
            out,
        );
    }
    for a in out.iter_mut() {
        *a /= candidates.len() as f64;
    }
    for (s, a) in out.iter_mut().zip(&pop) {
        *s -= a;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dca::config::DcaConfig;
    use crate::dca::control::RunControl;
    use crate::dca::full::run_full_descent;
    use crate::dca::objective::TopKDisparity;
    use crate::dca::sharded::run_full_dca_sharded;
    use crate::metrics::sharded as shmetrics;
    use crate::object::DataObject;
    use crate::ranking::{selection_size, WeightedSumRanker};
    use crate::shard::ShardedDataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A biased cohort with *non*-dyadic scores and a two-dimensional
    /// fairness schema: bit-identity must come from identical operation
    /// order, not from exactly-representable values.
    fn cohort(n: u64, seed: u64, shard_size: usize) -> ShardedDataset {
        let schema = Schema::from_names(&["a", "b"], &["g", "h"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let g = rng.gen::<f64>() < 0.3;
                let h = rng.gen::<f64>() < 0.5;
                let a = rng.gen::<f64>() * 100.0 - if g { 13.7 } else { 0.0 };
                let b = rng.gen::<f64>() * 10.0;
                DataObject::new_unchecked(
                    i,
                    vec![a, b],
                    vec![f64::from(u8::from(g)), f64::from(u8::from(h))],
                    None,
                )
            })
            .collect();
        ShardedDataset::from_objects(schema, objects, shard_size).unwrap()
    }

    fn split_partials(
        data: &ShardedDataset,
        ranker: &WeightedSumRanker,
        bonus: &[f64],
        count: usize,
        cuts: &[usize],
    ) -> Vec<DisparityPartial> {
        let mut partials = Vec::new();
        let mut start = 0;
        for &cut in cuts.iter().chain(std::iter::once(&data.num_shards())) {
            partials.extend(disparity_partials(data, ranker, bonus, count, start..cut).unwrap());
            start = cut;
        }
        partials
    }

    #[test]
    fn combined_partials_match_local_disparity_bitwise() {
        let data = cohort(500, 7, 48);
        let ranker = WeightedSumRanker::new(vec![1.0, 0.25]).unwrap();
        let mut scratch = shmetrics::ShardedEvalScratch::new();
        for k in [0.02, 0.2, 0.9] {
            let count = selection_size(data.len(), k).unwrap();
            for bonus in [vec![0.0, 0.0], vec![3.3, -1.1]] {
                let mut local = Vec::new();
                shmetrics::disparity_at_k_into(&data, &ranker, &bonus, k, &mut scratch, &mut local)
                    .unwrap();
                for cuts in [vec![], vec![4], vec![2, 7], vec![1, 2, 3]] {
                    let partials = split_partials(&data, &ranker, &bonus, count, &cuts);
                    let mut combined = Vec::new();
                    combine_disparity_partials(data.len(), 2, count, &partials, &mut combined)
                        .unwrap();
                    let a: Vec<u64> = local.iter().map(|v| v.to_bits()).collect();
                    let b: Vec<u64> = combined.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a, b, "k={k} bonus={bonus:?} cuts={cuts:?}");
                }
            }
        }
    }

    #[test]
    fn partials_are_order_insensitive_and_pure() {
        let data = cohort(300, 3, 32);
        let ranker = WeightedSumRanker::new(vec![1.0, 1.0]).unwrap();
        let count = selection_size(data.len(), 0.1).unwrap();
        let bonus = [2.0, 0.5];
        let mut partials = split_partials(&data, &ranker, &bonus, count, &[5]);
        let again = split_partials(&data, &ranker, &bonus, count, &[5]);
        assert_eq!(
            partials, again,
            "partials are pure — retries are idempotent"
        );
        let mut ordered = Vec::new();
        combine_disparity_partials(data.len(), 2, count, &partials, &mut ordered).unwrap();
        partials.reverse();
        let mut reversed = Vec::new();
        combine_disparity_partials(data.len(), 2, count, &partials, &mut reversed).unwrap();
        assert_eq!(ordered, reversed, "combine sorts by shard itself");
    }

    #[test]
    fn combine_rejects_double_counted_missing_and_malformed_shards() {
        let data = cohort(200, 1, 32);
        let ranker = WeightedSumRanker::new(vec![1.0, 1.0]).unwrap();
        let count = 20;
        let partials =
            disparity_partials(&data, &ranker, &[0.0; 2], count, 0..data.num_shards()).unwrap();
        let mut out = Vec::new();

        // A retried range slipped in twice: refused, not double-counted.
        let mut doubled = partials.clone();
        doubled.push(partials[2].clone());
        let err = combine_disparity_partials(data.len(), 2, count, &doubled, &mut out).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");

        // A missing shard is refused.
        let missing: Vec<_> = partials[1..].to_vec();
        let err = combine_disparity_partials(data.len(), 2, count, &missing, &mut out).unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");

        // A row-count mismatch is refused.
        let err = combine_disparity_partials(999, 2, count, &partials, &mut out).unwrap_err();
        assert!(err.to_string().contains("rows"), "{err}");

        // Shape violations are refused.
        let mut torn = partials.clone();
        torn[0].fairness.pop();
        let err = combine_disparity_partials(data.len(), 2, count, &torn, &mut out).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn partials_validate_range_count_and_emptiness() {
        let data = cohort(100, 2, 16);
        let ranker = WeightedSumRanker::new(vec![1.0, 1.0]).unwrap();
        assert!(disparity_partials(&data, &ranker, &[0.0; 2], 10, 0..99).is_err());
        assert!(disparity_partials(&data, &ranker, &[0.0; 2], 0, 0..1).is_err());
        assert!(disparity_partials(&data, &ranker, &[0.0; 2], 101, 0..1).is_err());
        let schema = Schema::from_names(&["a", "b"], &["g", "h"], &[]).unwrap();
        let empty = ShardedDataset::with_shard_size(schema, 8).unwrap();
        assert!(matches!(
            disparity_partials(&empty, &ranker, &[0.0; 2], 1, 0..0),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn full_descent_over_combined_partials_matches_the_sharded_runner_bitwise() {
        let data = cohort(400, 11, 64);
        let ranker = WeightedSumRanker::new(vec![1.0, 0.5]).unwrap();
        let k = 0.2;
        let config = DcaConfig {
            learning_rates: vec![10.0, 1.0],
            iterations_per_rate: 8,
            refinement_iterations: 0,
            seed: 5,
            ..DcaConfig::default()
        };
        let local =
            run_full_dca_sharded(&data, &ranker, &TopKDisparity::new(k), &config, None, true)
                .unwrap();

        // Simulate a 3-worker coordinator: three disjoint ranges per step,
        // combined in shard order.
        let count = selection_size(data.len(), k).unwrap();
        let dims = 2;
        let distributed = run_full_descent(
            dims,
            data.len(),
            &config,
            None,
            true,
            &RunControl::new(),
            |bonus, out| {
                let partials = split_partials(&data, &ranker, bonus, count, &[3, 5]);
                combine_disparity_partials(data.len(), dims, count, &partials, out)
            },
        )
        .unwrap();
        let a: Vec<u64> = local.bonus.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = distributed.bonus.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "distributed Full DCA is bit-identical");
        assert_eq!(local.steps, distributed.steps);
        for (s, t) in local.trace.iter().zip(&distributed.trace) {
            assert_eq!(s.bonus, t.bonus, "step {}", s.step);
        }
    }
}
