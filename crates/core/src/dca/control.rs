//! Cooperative cancellation and progress reporting for long DCA runs.
//!
//! A descent over a large cohort can run for minutes; a serving layer that
//! launches DCA as a background job needs two things the plain runners do not
//! provide: a way to *stop* a run that nobody wants anymore, and a way to
//! *observe* how far along it is. [`RunControl`] carries both:
//!
//! * **cancellation** — any thread may call [`RunControl::cancel`]; the
//!   descent checks the flag between steps and returns
//!   [`FairError::Cancelled`](crate::error::FairError::Cancelled) at the next
//!   step boundary, leaving no partial state behind (the outcome is simply an
//!   error);
//! * **progress** — an optional callback invoked once per completed step with
//!   a [`DcaProgress`] snapshot (step counter and total), from the thread
//!   running the descent.
//!
//! A default (empty) control is free: no allocation, one relaxed atomic load
//! per step. The controlled runner variants
//! ([`crate::dca::run_full_dca_sharded_controlled`],
//! [`crate::dca::run_core_dca_sharded_controlled`]) execute the *identical*
//! step loop as their uncontrolled counterparts, so a run that is never
//! cancelled produces the bit-identical trajectory.

use crate::error::{FairError, Result};
use std::sync::atomic::{AtomicBool, Ordering};

/// A point-in-time progress snapshot handed to the progress callback after
/// each completed descent step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcaProgress {
    /// Steps completed so far (1-based after the first step).
    pub step: usize,
    /// Total steps this run will execute
    /// ([`crate::dca::DcaConfig::core_steps`]).
    pub total_steps: usize,
}

/// Shared handle controlling a running descent: a cancellation flag plus an
/// optional progress callback. Designed to be stored in an `Arc` and shared
/// between the thread running DCA and the threads observing it.
#[derive(Default)]
pub struct RunControl {
    cancelled: AtomicBool,
    #[allow(clippy::type_complexity)]
    progress: Option<Box<dyn Fn(DcaProgress) + Send + Sync>>,
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.is_cancelled())
            .field("has_progress_hook", &self.progress.is_some())
            .finish()
    }
}

impl RunControl {
    /// A control with no progress hook and the cancellation flag cleared.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A control that invokes `hook` after every completed descent step.
    #[must_use]
    pub fn with_progress(hook: impl Fn(DcaProgress) + Send + Sync + 'static) -> Self {
        Self {
            cancelled: AtomicBool::new(false),
            progress: Some(Box::new(hook)),
        }
    }

    /// Request cancellation: the descent returns
    /// [`FairError::Cancelled`] at the next step boundary. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Step-boundary check the descent loops call *before* each step:
    /// surfaces a pending cancellation as an error.
    ///
    /// # Errors
    /// Returns [`FairError::Cancelled`] when [`RunControl::cancel`] has been
    /// called.
    pub(crate) fn checkpoint(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(FairError::Cancelled);
        }
        Ok(())
    }

    /// Report a completed step to the progress hook (if any).
    pub(crate) fn report(&self, step: usize, total_steps: usize) {
        if let Some(hook) = &self.progress {
            hook(DcaProgress { step, total_steps });
        }
    }
}

/// A progress hook that records the wall-clock duration of each descent step
/// into `histogram` — the building block behind the serve layer's per-step
/// job histograms and the bench suite's instrumentation-overhead contrast.
///
/// Timing lives entirely inside the callback (the caller's layer), never in
/// the descent itself: the step loop is identical with or without the hook,
/// so trajectories stay bit-identical. The first report measures from hook
/// construction; subsequent reports measure from the previous report.
/// Compose it with other bookkeeping by calling the returned closure from a
/// wrapper hook.
pub fn step_duration_hook(
    histogram: std::sync::Arc<crate::obs::Histogram>,
) -> impl Fn(DcaProgress) + Send + Sync + 'static {
    let last = std::sync::Mutex::new(std::time::Instant::now());
    move |_p: DcaProgress| {
        let mut last = last.lock().expect("step timer lock poisoned");
        let now = std::time::Instant::now();
        let us = u64::try_from(
            now.duration_since(*last)
                .as_micros()
                .min(u128::from(u64::MAX)),
        )
        .unwrap_or(u64::MAX);
        *last = now;
        histogram.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn default_control_is_not_cancelled_and_checkpoints_ok() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        assert!(c.checkpoint().is_ok());
        c.report(1, 10); // no hook: a no-op
    }

    #[test]
    fn cancel_turns_checkpoint_into_the_cancelled_error() {
        let c = RunControl::new();
        c.cancel();
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
        assert!(matches!(c.checkpoint(), Err(FairError::Cancelled)));
    }

    #[test]
    fn progress_hook_sees_every_report() {
        let seen = Arc::new(AtomicUsize::new(0));
        let captured = seen.clone();
        let c = RunControl::with_progress(move |p: DcaProgress| {
            assert_eq!(p.total_steps, 4);
            captured.fetch_add(p.step, Ordering::Relaxed);
        });
        for step in 1..=4 {
            c.report(step, 4);
        }
        assert_eq!(seen.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn control_is_shareable_across_threads() {
        let c = Arc::new(RunControl::new());
        let c2 = c.clone();
        std::thread::spawn(move || c2.cancel()).join().unwrap();
        assert!(c.is_cancelled());
    }
}
