//! Quickstart: learn explainable bonus points for a biased selection process.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a small synthetic school cohort, measures the disparity
//! of an uncorrected 5% selection, runs DCA, and prints the bonus-point
//! intervention a school could publish to its applicants.

use fair_ranking::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    // 1. A synthetic cohort of 10,000 students with the NYC-like bias
    //    structure (low-income / ELL / special-ed / ENI).
    let cohort = SchoolGenerator::new(SchoolConfig::small(10_000, 42)).generate();
    let dataset = cohort.dataset();
    println!("Population summary:\n{}", DatasetSummary::compute(dataset)?);

    // 2. The screened-school rubric: 55% GPA + 45% state test scores.
    let rubric = SchoolGenerator::rubric();

    // 3. How disparate is the uncorrected top-5% selection?
    let view = dataset.full_view();
    let baseline_ranking =
        RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let baseline = disparity_at_k(&view, &baseline_ranking, 0.05)?;
    println!("Baseline disparity at k = 5%:");
    for (name, value) in dataset.schema().fairness_names().iter().zip(&baseline) {
        println!("  {name:<12} {value:+.3}");
    }
    println!("  {:<12} {:.3}\n", "Norm", norm(&baseline));

    // 4. Run DCA (Core DCA + Adam refinement + 0.5-point rounding).
    let config = DcaConfig {
        sample_size: 500,
        iterations_per_rate: 100,
        refinement_iterations: 100,
        rolling_window: 100,
        ..DcaConfig::default()
    };
    let result = Dca::new(config.clone()).run(dataset, &rubric, &TopKDisparity::new(0.05))?;

    // 5. The published, explainable intervention.
    println!("{}\n", result.bonus.explain());
    println!(
        "Disparity after bonus points:\n{}",
        result.report.disparity_after
    );
    println!(
        "\nCore DCA took {:?}, refinement took {:?} ({} + {} objects scored)",
        result.report.core_time,
        result.report.refinement_time,
        result.report.core_objects_scored,
        result.report.refinement_objects_scored
    );

    // 6. The performance story behind the sub-linearity claim: each DCA step
    //    touches only a 500-object sample, so throughput is what matters...
    let objects_scored =
        result.report.core_objects_scored + result.report.refinement_objects_scored;
    let dca_seconds = (result.report.core_time + result.report.refinement_time).as_secs_f64();
    println!(
        "DCA throughput: {:.0} objects scored/sec over {} sampled steps",
        objects_scored as f64 / dca_seconds.max(1e-9),
        config.core_steps() + config.refinement_iterations,
    );

    //    ...and the selection phase itself never needs a full sort for a
    //    fixed k: the partial top-k partition does the same selection in a
    //    fraction of the time.
    let scores = effective_scores(&view, &rubric, result.bonus.values());
    let m = selection_size(scores.len(), 0.05)?;
    // Clone outside the timed regions so both paths are charged for ranking
    // only, not for copying the score vector.
    let scores_for_full = scores.clone();
    let t_full = Instant::now();
    let full_sort = RankedSelection::from_scores(scores_for_full);
    let t_full = t_full.elapsed();
    let t_partial = Instant::now();
    let partial = RankedSelection::from_scores_topk(scores, m);
    let t_partial = t_partial.elapsed();
    assert_eq!(full_sort.selected(0.05)?, partial.selected(0.05)?);
    println!(
        "Selection phase over {} students: full sort {t_full:?} vs partial top-{m} {t_partial:?} \
         (identical selection)",
        dataset.len(),
    );
    Ok(())
}
