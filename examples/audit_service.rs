//! The audit service end to end: start `fair-serve` in-process on an
//! ephemeral port, register an on-disk cohort store, audit it over the wire,
//! run a background Full-DCA job to completion, cancel a second long job
//! mid-run, and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example audit_service
//! ```
//!
//! This is also the CI smoke job for the serving layer: every step asserts,
//! so a wire-format or lifecycle regression fails the run.

use fair_ranking::data::store::school_to_store;
use fair_ranking::prelude::*;
use fair_ranking::serve::{serve, AuditService, Client, JobKind, JobRequest, MetricsRequest};
use std::time::{Duration, Instant};

const ROWS: usize = 20_000;
const K: f64 = 0.05;
const RUBRIC_WEIGHTS: [f64; 2] = [0.55, 0.45];

fn main() {
    // 1. Stream a synthetic school cohort onto disk (never materialized).
    let path = std::env::temp_dir().join(format!("audit_service_{}.fss", std::process::id()));
    let generator = SchoolGenerator::new(SchoolConfig::small(ROWS, 7));
    let summary = school_to_store(&generator, default_shard_size(), &path).expect("write store");
    println!(
        "wrote {} rows in {} shards -> {}",
        summary.rows,
        summary.shards,
        path.display()
    );

    // 2. Start the service on an ephemeral port and register the store.
    let workers = fair_ranking::core::max_workers().min(8);
    let server = serve(AuditService::new(), "127.0.0.1:0", workers).expect("bind service");
    println!(
        "fair-serve listening on {} ({workers} workers)",
        server.addr()
    );
    let client = Client::new(server.addr());
    client.health().expect("health check");
    let info = client
        .register_disk_store("school", path.to_str().expect("utf8 path"))
        .expect("register store");
    assert_eq!(info.rows, ROWS);
    let (features, fairness) = client.schema("school").expect("schema");
    println!("registered `school`: features {features:?}, fairness {fairness:?}");

    // 3. Synchronous audit: baseline disparity + nDCG at k over the wire.
    let baseline = client
        .metrics(
            "school",
            &MetricsRequest {
                k: K,
                bonus: None,
                weights: Some(RUBRIC_WEIGHTS.to_vec()),
                metrics: Some(vec!["disparity".into(), "ndcg".into()]),
            },
        )
        .expect("baseline metrics");
    let baseline_disparity = baseline.disparity.expect("disparity");
    println!("baseline disparity@{K}: {baseline_disparity:?}");
    assert!(
        norm(&baseline_disparity) > 0.05,
        "the synthetic cohort is built biased"
    );

    // 4. Launch a Full-DCA job, watch its progress, and fetch the result.
    let job = client
        .submit_job(&JobRequest {
            store: "school".into(),
            kind: JobKind::Full,
            k: K,
            weights: Some(RUBRIC_WEIGHTS.to_vec()),
            seed: 77,
            sample_size: None,
            learning_rates: Some(vec![8.0, 1.0]),
            iterations_per_rate: Some(15),
            workers: None,
        })
        .expect("submit job");
    println!("launched {} ({} steps total)", job.id, job.total_steps);
    let start = Instant::now();
    let done = client
        .wait_for_job(&job.id, Duration::from_secs(300))
        .expect("job finishes");
    assert_eq!(done.state, "completed", "job error: {:?}", done.error);
    let result = done.result.expect("completed jobs carry a result");
    println!(
        "{} completed in {:.1?}: bonus {:?} ({} objects scored)",
        done.id,
        start.elapsed(),
        result.bonus,
        result.objects_scored
    );

    // 5. The learned bonus actually closes the gap — audit again through the
    //    wire with the job's bonus applied.
    let after = client
        .metrics(
            "school",
            &MetricsRequest {
                k: K,
                bonus: Some(result.bonus.clone()),
                weights: Some(RUBRIC_WEIGHTS.to_vec()),
                metrics: Some(vec!["disparity".into(), "ndcg".into()]),
            },
        )
        .expect("post-DCA metrics");
    let after_disparity = after.disparity.expect("disparity");
    println!(
        "disparity after DCA: {after_disparity:?} (norm {:.4} -> {:.4}), nDCG {:.4}",
        norm(&baseline_disparity),
        norm(&after_disparity),
        after.ndcg.expect("ndcg")
    );
    assert!(
        norm(&after_disparity) < norm(&baseline_disparity) * 0.5,
        "DCA must cut the disparity norm at least in half"
    );

    // 6. A second, long job is cancellable mid-run.
    let long_job = client
        .submit_job(&JobRequest {
            store: "school".into(),
            kind: JobKind::Full,
            k: K,
            weights: Some(RUBRIC_WEIGHTS.to_vec()),
            seed: 78,
            sample_size: None,
            learning_rates: Some(vec![4.0, 2.0, 1.0]),
            iterations_per_rate: Some(10_000),
            workers: None,
        })
        .expect("submit long job");
    loop {
        let view = client.job(&long_job.id).expect("job status");
        if view.step >= 3 || view.is_terminal() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    client.cancel_job(&long_job.id).expect("cancel");
    let cancelled = client
        .wait_for_job(&long_job.id, Duration::from_secs(60))
        .expect("cancellation lands");
    assert_eq!(cancelled.state, "cancelled");
    println!(
        "{} cancelled after {} of {} steps",
        cancelled.id, cancelled.step, cancelled.total_steps
    );

    // 7. Clean shutdown: drains request workers, joins every job thread.
    server.shutdown();
    println!("server shut down cleanly");
    std::fs::remove_file(&path).ok();
}
