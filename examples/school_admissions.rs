//! School-admissions scenario: train bonus points on one academic year, apply
//! them to the next, and publish the information a family would need.
//!
//! ```text
//! cargo run --release --example school_admissions
//! ```
//!
//! Mirrors the paper's primary evaluation (Section VI-A): a screened school
//! selects 5% of applicants with a 55/45 GPA/test rubric; DCA computes the
//! bonus points that bring the selection to statistical parity, and the
//! example reports utility (nDCG), the admission threshold, and a per-student
//! "what would my score be?" illustration.

use fair_ranking::prelude::*;

fn main() -> Result<()> {
    let k = 0.05;
    // Two academic years: train on the first, evaluate on the second.
    let generator = SchoolGenerator::new(SchoolConfig {
        num_students: 20_000,
        ..SchoolConfig::default()
    });
    let (train, test) = generator.train_test_cohorts();
    let rubric = SchoolGenerator::rubric();

    println!("Training cohort: {} students", train.dataset().len());
    println!("Test cohort:     {} students\n", test.dataset().len());

    // Learn the bonus points on the training year.
    let result =
        Dca::with_paper_defaults().run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
    println!("Published intervention for next year's admissions:");
    println!("{}\n", result.bonus.explain());

    // Evaluate on the following year.
    let view = test.dataset().full_view();
    let before = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let after =
        RankedSelection::from_scores(effective_scores(&view, &rubric, result.bonus.values()));
    let disparity_before = disparity_at_k(&view, &before, k)?;
    let disparity_after = disparity_at_k(&view, &after, k)?;
    let utility = ndcg_at_k(&view, &rubric, &after, k)?;
    println!(
        "Test-year disparity norm: {:.3} -> {:.3}",
        norm(&disparity_before),
        norm(&disparity_after)
    );
    println!("Test-year nDCG@5%:        {utility:.3}");

    // Transparency artifacts: the admission threshold and a what-if example.
    if let Some(threshold) = after.threshold_score(k)? {
        println!("Published admission threshold (bonus-adjusted score): {threshold:.1}");
        // Pick one low-income ELL student outside the unadjusted selection and
        // show how the bonus affects their standing.
        if let Some(student) = test
            .dataset()
            .iter()
            .find(|o| o.in_group(0) && o.in_group(1))
        {
            let base = rubric.base_score(student);
            let adjusted = base + student.bonus_increment(result.bonus.values());
            println!(
                "Example applicant {} (low-income, ELL): rubric score {base:.1}, \
                 with bonus {adjusted:.1} -> {}",
                student.id(),
                if adjusted >= threshold {
                    "admitted"
                } else {
                    "not admitted"
                }
            );
        }
    }

    // The school does not know its final k: show the log-discounted variant.
    let log_result = Dca::with_paper_defaults().run(
        train.dataset(),
        &rubric,
        &LogDiscountedObjective::new(LogDiscountConfig {
            step: 10,
            max_fraction: 0.5,
        }),
    )?;
    println!("\nIf the selection size is unknown (matching context), publish instead:");
    println!("{}", log_result.bonus.explain());
    Ok(())
}
