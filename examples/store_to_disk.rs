//! Out-of-core data plane end to end: stream a cohort **directly onto
//! disk** (no in-RAM cohort ever exists), then evaluate metrics and run DCA
//! straight off the file through the byte-budgeted shard cache.
//!
//! ```text
//! cargo run --release --example store_to_disk
//! FAIR_CACHE_BYTES=65536 cargo run --release --example store_to_disk  # tiny cache
//! ```

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::data::store::school_to_store;
use fair_ranking::prelude::*;
use fair_ranking::store::column_bytes;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a school cohort straight into an FSS1 store file: every
    //    student goes from the RNG to the shard buffer to disk — the cohort
    //    is never materialized in memory.
    let shard_size = default_shard_size().min(4_096);
    let generator = SchoolGenerator::new(SchoolConfig::small(60_000, 42));
    let path = std::env::temp_dir().join("store_to_disk_example.fss");
    let summary = school_to_store(&generator, shard_size, &path)?;
    println!(
        "Wrote {} students as {} shards ({} KiB) to {}",
        summary.rows,
        summary.shards,
        summary.file_bytes / 1024,
        path.display()
    );

    // 2. Open the store with a cache budget far below the cohort's column
    //    bytes, so evaluation genuinely pages: shards are decoded on demand,
    //    pinned while a kernel reads them, and evicted LRU-first to stay
    //    under budget. The budget leaves room for the worker pool's pinned
    //    working set (one shard per parallel worker) plus a small LRU tail —
    //    pinned shards cannot be evicted, so a budget below that floor would
    //    be exceeded while kernels run. (FAIR_CACHE_BYTES overrides the
    //    default 256 MiB; the explicit budget keeps the demo deterministic.)
    let probe = ShardStore::open_with_budget(&path, 0)?;
    let shard0 = probe.read_shard(0)?;
    let one_shard = column_bytes(&shard0);
    drop((probe, shard0));
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let budget = (workers + 2) * one_shard;
    let store = ShardStore::open_with_budget(&path, budget)?;
    println!(
        "Cache budget {} KiB (≈{} of {} shards resident at once)",
        store.cache_budget() / 1024,
        store.cache_budget() / one_shard.max(1),
        summary.shards,
    );

    // 3. Every sharded metric runs unchanged over the store — ShardStore and
    //    the in-memory ShardedDataset implement the same ShardSource trait.
    let rubric = SchoolGenerator::rubric();
    let zero = [0.0; 4];
    let k = 0.05;
    let baseline = shmetrics::disparity_at_k(&store, &rubric, &zero, k)?;
    println!("\nBaseline disparity at k = 5% (evaluated from disk):");
    for (name, value) in store.schema().fairness_names().iter().zip(&baseline) {
        println!("  {name:<12} {value:+.3}");
    }

    // 4. Core DCA with per-shard sampling, driven straight off the file.
    let config = DcaConfig {
        sample_size: 500,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 40,
        refinement_iterations: 0,
        seed: 7,
        ..DcaConfig::default()
    };
    let objective = TopKDisparity::new(k);
    let outcome = run_core_dca_sharded(&store, &rubric, &objective, &config, None, false)?;
    let after = shmetrics::disparity_at_k(&store, &rubric, &outcome.bonus, k)?;
    println!(
        "\nCore DCA over the store: {} steps, {} objects scored",
        outcome.steps, outcome.objects_scored
    );
    println!(
        "Disparity norm {:.3} -> {:.3}; nDCG@5% {:.4}",
        norm(&baseline),
        norm(&after),
        shmetrics::ndcg_at_k(&store, &rubric, &outcome.bonus, k)?
    );

    // 5. The paged evaluation is bit-for-bit the in-memory evaluation: the
    //    same cohort re-generated into RAM shards produces identical bits.
    let mem = generator.generate_sharded(shard_size)?.into_dataset();
    let mem_after = shmetrics::disparity_at_k(&mem, &rubric, &outcome.bonus, k)?;
    assert_eq!(
        after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        mem_after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "paged evaluation must match the in-memory engine bit for bit"
    );
    println!("\nIn-memory parity check: bit-for-bit identical.");

    // 6. Cache behaviour: how hard did the budget work?
    let stats = store.cache_stats();
    println!(
        "Cache: {} hits, {} misses, {} evictions; peak {} KiB of {} KiB budget",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.peak_bytes / 1024,
        stats.budget_bytes / 1024,
    );
    assert!(
        stats.peak_bytes <= stats.budget_bytes,
        "peak resident bytes must stay under the budget"
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
