//! Calibrating the intervention strength and explaining individual outcomes.
//!
//! ```text
//! cargo run --release --example calibrated_intervention
//! ```
//!
//! Stakeholders rarely accept the full recommended intervention blindly: a
//! school board may insist on a minimum ranking utility, or a regulator on a
//! maximum residual disparity. This example shows the binary-search
//! calibration of Section VI-A2 against both kinds of targets, then uses the
//! explanation utilities to print exactly what one applicant would see.

use fair_ranking::prelude::*;

fn main() -> Result<()> {
    let k = 0.05;
    let cohort = SchoolGenerator::new(SchoolConfig::small(20_000, 42)).generate();
    let dataset = cohort.dataset();
    let rubric = SchoolGenerator::rubric();

    // 1. Learn the full recommended bonus vector.
    let result = Dca::with_paper_defaults().run(dataset, &rubric, &TopKDisparity::new(k))?;
    println!("Recommended intervention:\n{}\n", result.bonus.explain());
    println!(
        "Full intervention: disparity norm {:.3}, nDCG {:.4}\n",
        result.report.disparity_after.norm(),
        {
            let view = dataset.full_view();
            let ranking = RankedSelection::from_scores(effective_scores(
                &view,
                &rubric,
                result.bonus.values(),
            ));
            ndcg_at_k(&view, &rubric, &ranking, k)?
        }
    );

    // 2a. The board insists on nDCG >= 0.985: how much of the bonus can we apply?
    let utility_floor = calibrate_proportion(
        dataset,
        &rubric,
        &result.bonus,
        k,
        CalibrationTarget::MinUtility(0.985),
        Some(0.5),
        16,
    )?;
    println!(
        "Utility floor 0.985  -> apply {:.0}% of the bonus: norm {:.3}, nDCG {:.4} (target met: {})",
        utility_floor.proportion * 100.0,
        utility_floor.disparity_norm,
        utility_floor.ndcg,
        utility_floor.target_met
    );

    // 2b. A regulator requires a disparity norm of at most 0.10: what is the
    //     smallest sufficient intervention?
    let fairness_ceiling = calibrate_proportion(
        dataset,
        &rubric,
        &result.bonus,
        k,
        CalibrationTarget::MaxDisparityNorm(0.10),
        Some(0.5),
        16,
    )?;
    println!(
        "Fairness ceiling 0.10 -> apply {:.0}% of the bonus: norm {:.3}, nDCG {:.4} (target met: {})\n",
        fairness_ceiling.proportion * 100.0,
        fairness_ceiling.disparity_norm,
        fairness_ceiling.ndcg,
        fairness_ceiling.target_met
    );

    // 3. What a family sees: the full score breakdown and the distance to the
    //    published threshold, for the first low-income ELL applicant.
    let view = dataset.full_view();
    let position = dataset
        .iter()
        .position(|o| o.in_group(0) && o.in_group(1))
        .expect("cohort contains low-income ELL students");
    let breakdown = score_breakdown(
        dataset.schema(),
        &rubric,
        &fairness_ceiling.bonus,
        dataset.row(position),
    )?;
    println!("{breakdown}\n");
    let outcome = selection_outcome(&view, &rubric, &fairness_ceiling.bonus, k, position)?;
    println!("{outcome}");
    Ok(())
}
