//! Sharded data plane end to end: stream a cohort into fixed-size shards,
//! evaluate every whole-cohort metric through the shard-wise parallel engine,
//! run DCA variants over the shards, and explain one applicant's outcome.
//!
//! ```text
//! cargo run --release --example sharded_cohort
//! FAIR_SHARD_SIZE=7 cargo run --release --example sharded_cohort   # tiny shards
//! ```

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::data::csv;
use fair_ranking::prelude::*;

fn main() -> Result<()> {
    // 1. Generate a school cohort *shard by shard*: rows go straight into
    //    fixed-size contiguous blocks, so no whole-cohort Vec<DataObject>
    //    ever exists. The shard size comes from FAIR_SHARD_SIZE when set.
    let shard_size = default_shard_size().min(4_096);
    let cohort =
        SchoolGenerator::new(SchoolConfig::small(30_000, 42)).generate_sharded(shard_size)?;
    let data = cohort.dataset();
    println!(
        "Cohort: {} students in {} shards of up to {} rows",
        data.len(),
        data.num_shards(),
        data.shard_size()
    );

    // 2. Whole-cohort metrics through the shard-wise engine: per-shard
    //    kernels + ordered combine. No full sort of the cohort is ever done.
    let rubric = SchoolGenerator::rubric();
    let zero = [0.0; 4];
    let k = 0.05;
    let baseline = shmetrics::disparity_at_k(data, &rubric, &zero, k)?;
    println!("\nBaseline disparity at k = 5% (shard-wise evaluation):");
    for (name, value) in data.schema().fairness_names().iter().zip(&baseline) {
        println!("  {name:<12} {value:+.3}");
    }
    println!("  norm         {:.3}", norm(&baseline));

    // 3. Core DCA with per-shard sampling: every step draws its sample shard
    //    by shard under a deterministically split seed stream — the building
    //    block for distributed DCA.
    let config = DcaConfig {
        sample_size: 500,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 60,
        refinement_iterations: 0,
        seed: 7,
        ..DcaConfig::default()
    };
    let objective = TopKDisparity::new(k);
    let outcome = run_core_dca_sharded(data, &rubric, &objective, &config, None, false)?;
    let after = shmetrics::disparity_at_k(data, &rubric, &outcome.bonus, k)?;
    println!(
        "\nCore DCA (per-shard sampling): {} steps, {} objects scored",
        outcome.steps, outcome.objects_scored
    );
    println!(
        "Disparity norm {:.3} -> {:.3}; nDCG@5% {:.4}",
        norm(&baseline),
        norm(&after),
        shmetrics::ndcg_at_k(data, &rubric, &outcome.bonus, k)?
    );

    // 4. Explain one applicant's outcome without materializing a global
    //    ranking: the rank is an exact per-shard count.
    let bonus = BonusVector::new(
        data.schema().clone(),
        outcome.bonus.clone(),
        BonusPolarity::NonNegative,
    )?;
    let explanation = selection_outcome_sharded(data, &rubric, &bonus, k, data.len() / 2)?;
    println!("\n{explanation}");

    // 5. Round-trip through the streaming CSV path: write the cohort, then
    //    read it back *directly into shards* via a BufReader (peak transient
    //    memory: one line + the shard being filled).
    let path = std::env::temp_dir().join("sharded_cohort_example.csv");
    csv::write_csv(&data.to_dataset(), &path).expect("write CSV");
    let reloaded = csv::read_csv_sharded(&path, shard_size).expect("stream CSV into shards");
    assert_eq!(reloaded.len(), data.len());
    assert_eq!(reloaded.row(17), data.row(17));
    println!(
        "\nStreamed {} rows back through {} ({} shards) — row-for-row identical.",
        reloaded.len(),
        path.display(),
        reloaded.num_shards()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
