//! Recidivism-score audit: measure and compensate the disparate impact of a
//! COMPAS-like decile score.
//!
//! ```text
//! cargo run --release --example recidivism_audit
//! ```
//!
//! Being flagged (top deciles) is the *unfavorable* outcome, so the bonus
//! points are non-positive: they subtract from the effective decile of groups
//! the score over-flags. The example audits both the flagged-set disparity
//! (Figure 10a) and the per-group false-positive rates (Figure 10b).

use fair_ranking::prelude::*;

fn main() -> Result<()> {
    let k = 0.3; // fraction of defendants flagged as high risk
    let dataset = CompasGenerator::paper_scale().generate();
    let ranker = CompasGenerator::decile_ranker();
    let names = dataset.schema().fairness_names();
    println!(
        "Defendants: {}, flagged fraction: {:.0}%\n",
        dataset.len(),
        k * 100.0
    );

    let view = dataset.full_view();
    let zero = vec![0.0; names.len()];
    let baseline = RankedSelection::from_scores(effective_scores(&view, &ranker, &zero));

    println!("Audit of the uncorrected decile score:");
    let disparity = disparity_at_k(&view, &baseline, k)?;
    let (fpr, overall_fpr) = group_fpr_at_k(&view, &baseline, k)?;
    println!("  {:<18} {:>10} {:>10}", "group", "disparity", "FPR");
    for ((name, d), f) in names.iter().zip(&disparity).zip(&fpr) {
        println!("  {name:<18} {d:>+10.3} {f:>10.3}");
    }
    println!(
        "  {:<18} {:>10.3} {overall_fpr:>10.3}\n",
        "norm / overall",
        norm(&disparity)
    );

    // Compensate the flagged-set disparity with non-positive bonus points.
    let config = DcaConfig {
        polarity: BonusPolarity::NonPositive,
        ..DcaConfig::paper_default()
    };
    let result = Dca::new(config.clone()).run(&dataset, &ranker, &TopKDisparity::new(k))?;
    println!("Disparity-driven adjustment (points subtracted from the decile):");
    println!("{}\n", result.bonus.explain());
    println!(
        "Flagged-set disparity norm: {:.3} -> {:.3}\n",
        result.report.disparity_before.norm(),
        result.report.disparity_after.norm()
    );

    // Alternatively, equalize false-positive rates directly.
    let fpr_result = Dca::new(config).run(&dataset, &ranker, &FprDifferenceObjective::new(k))?;
    let adjusted =
        RankedSelection::from_scores(effective_scores(&view, &ranker, fpr_result.bonus.values()));
    let (fpr_after, overall_after) = group_fpr_at_k(&view, &adjusted, k)?;
    println!("FPR-driven adjustment:");
    println!("  {:<18} {:>10} {:>10}", "group", "FPR before", "FPR after");
    for ((name, before), after) in names.iter().zip(&fpr).zip(&fpr_after) {
        println!("  {name:<18} {before:>10.3} {after:>10.3}");
    }
    println!(
        "  {:<18} {overall_fpr:>10.3} {overall_after:>10.3}",
        "overall"
    );
    Ok(())
}
