//! The fleet coordinator end to end: start two `fair-serve` workers
//! in-process on ephemeral ports, drive a Full-DCA descent through the
//! partial-reduce protocol, survive an injected 500 burst, then kill one
//! worker outright and finish the audit on the survivor — every trajectory
//! bit-identical to the local sharded runner.
//!
//! ```sh
//! cargo run --release --example fleet_audit
//! ```
//!
//! This is also the CI smoke job for the fleet layer: every step asserts,
//! so a placement, retry, or re-dispatch regression fails the run.

use fair_ranking::core::fault::{install, FaultPlan};
use fair_ranking::prelude::*;
use fair_ranking::serve::{serve, AuditService, Client, FleetConfig, FleetCoordinator};
use std::time::{Duration, Instant};

const ROWS: usize = 20_000;
const SEED: u64 = 7;
const K: f64 = 0.05;
const RUBRIC_WEIGHTS: [f64; 2] = [0.55, 0.45];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    // Shard finely enough that a 20k-row cohort spreads across both workers
    // (the default 64Ki shard size would leave worker 1 an empty range).
    std::env::set_var("FAIR_SHARD_SIZE", "2048");

    // 1. Two workers, each holding the same deterministic cohort.
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..2 {
        let server = serve(AuditService::new(), "127.0.0.1:0", 4).expect("bind worker");
        Client::new(server.addr())
            .register_synthetic("cohort", "school", ROWS, SEED)
            .expect("register cohort");
        println!("worker {i} listening on {}", server.addr());
        addrs.push(server.addr());
        handles.push(server);
    }

    // 2. The coordinator splits the shards across the fleet.
    let fleet = FleetCoordinator::connect(
        "cohort",
        &addrs,
        FleetConfig {
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            ..FleetConfig::default()
        },
    )
    .expect("connect fleet");
    println!(
        "placement: {} shards over {} workers -> {:?}",
        fleet.placement().num_shards(),
        fleet.placement().num_workers(),
        fleet.placement().assignments()
    );
    assert!(
        fleet.placement().assignments().len() == 2,
        "both workers own a non-empty range"
    );

    // The same cohort, built locally: the reference for every bit-identity
    // check below.
    let local = SchoolGenerator::new(SchoolConfig::small(ROWS, SEED))
        .generate_sharded(default_shard_size())
        .expect("local cohort")
        .into_dataset();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).expect("ranker");

    // 3. A distributed Full-DCA descent, bit-identical to the local runner.
    let config = DcaConfig {
        learning_rates: vec![8.0, 1.0],
        iterations_per_rate: 15,
        refinement_iterations: 0,
        seed: 77,
        ..DcaConfig::default()
    };
    let start = Instant::now();
    let fleet_full = fleet
        .run_full_dca(K, Some(&RUBRIC_WEIGHTS), &config, None, false)
        .expect("fleet full DCA");
    let lib_full = run_full_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(K),
        &config,
        None,
        false,
    )
    .expect("local full DCA");
    assert_eq!(
        bits(&fleet_full.bonus),
        bits(&lib_full.bonus),
        "fleet trajectory == run_full_dca_sharded, bit for bit"
    );
    println!(
        "full DCA over the fleet in {:.1?}: bonus {:?} ({} steps)",
        start.elapsed(),
        fleet_full.bonus,
        fleet_full.steps
    );

    // 4. An injected 500 burst: the coordinator retries and fails ranges
    //    over, and the trajectory does not move by a bit.
    install(FaultPlan::parse("serve@partials:500:2").expect("fault spec"));
    let core_config = DcaConfig {
        sample_size: 400,
        learning_rates: vec![8.0, 1.0],
        iterations_per_rate: 10,
        refinement_iterations: 0,
        seed: 91,
        ..DcaConfig::default()
    };
    let fleet_core = fleet
        .run_core_dca(K, Some(&RUBRIC_WEIGHTS), &core_config, None, false)
        .expect("fleet core DCA under faults");
    install(FaultPlan::none());
    let lib_core = run_core_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(K),
        &core_config,
        None,
        false,
    )
    .expect("local core DCA");
    assert_eq!(
        bits(&fleet_core.bonus),
        bits(&lib_core.bonus),
        "an injected 500 burst must not change the trajectory"
    );
    let after_faults = fleet.report();
    assert!(
        after_faults.retries + after_faults.re_dispatches >= 2,
        "both injected 500s were absorbed: {after_faults:?}"
    );
    println!("core DCA survived an injected 500 burst: {after_faults:?}");

    // 5. Kill worker 1 outright: its range re-dispatches to worker 0 and the
    //    audit completes in degraded single-node mode.
    handles.remove(1).shutdown();
    println!("worker 1 killed; re-running the descent on the survivor");
    let survivor_full = fleet
        .run_full_dca(K, Some(&RUBRIC_WEIGHTS), &config, None, false)
        .expect("degraded full DCA");
    assert_eq!(
        bits(&survivor_full.bonus),
        bits(&lib_full.bonus),
        "losing a worker must not change the trajectory"
    );
    let report = fleet.report();
    assert!(
        report.re_dispatches > after_faults.re_dispatches,
        "the dead worker's range moved to the survivor: {report:?}"
    );
    assert!(
        fleet.workers().iter().any(|w| !w.healthy),
        "the dead worker is ejected from the rotation"
    );
    println!("degraded run matched bit for bit: {report:?}");

    // 6. Clean shutdown of the survivor.
    for h in handles {
        h.shutdown();
    }
    println!("fleet audit PASS");
}
