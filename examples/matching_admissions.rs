//! Deferred-acceptance admissions with and without DCA bonus points.
//!
//! ```text
//! cargo run --release --example matching_admissions
//! ```
//!
//! In a school-choice match no school knows in advance how far down its list
//! it will reach, so the bonus points are computed with the logarithmically
//! discounted DCA mode (Section IV-E) and then applied inside a full
//! Gale–Shapley match. The example reports the disparity of each school's
//! admitted cohort before and after the intervention.

use fair_ranking::prelude::*;

fn main() -> Result<()> {
    let cohort = SchoolGenerator::new(SchoolConfig {
        num_students: 20_000,
        ..SchoolConfig::default()
    })
    .generate();
    let dataset = cohort.dataset();
    let rubric = SchoolGenerator::rubric();

    // Learn log-discounted bonus points (unknown final selection size).
    let dca = Dca::with_paper_defaults().run(
        dataset,
        &rubric,
        &LogDiscountedObjective::new(LogDiscountConfig {
            step: 10,
            max_fraction: 0.5,
        }),
    )?;
    println!("Log-discounted bonus points:\n{}\n", dca.bonus.explain());

    // Run the admissions match with and without the bonus.
    let simulator = SchoolChoiceSimulator::new(SchoolChoiceConfig {
        num_schools: 8,
        capacity_fraction: 0.15,
        ..SchoolChoiceConfig::default()
    })?;
    let uncorrected = simulator.run(dataset, &rubric, None)?;
    let corrected = simulator.run(dataset, &rubric, Some(&dca.bonus))?;

    println!(
        "{:<8} {:>10} {:>22} {:>22}",
        "school", "seats", "disparity norm before", "disparity norm after"
    );
    for school in 0..uncorrected.capacities.len() {
        println!(
            "{:<8} {:>10} {:>22.3} {:>22.3}",
            school,
            uncorrected.capacities[school],
            norm(&uncorrected.per_school_disparity[school]),
            norm(&corrected.per_school_disparity[school]),
        );
    }
    println!(
        "\nAll admitted students: disparity norm {:.3} -> {:.3}",
        uncorrected.overall_norm(),
        corrected.overall_norm()
    );
    println!(
        "Effective selection depth per school (before): {:?}",
        uncorrected
            .effective_k
            .iter()
            .map(|k| format!("{:.0}%", k * 100.0))
            .collect::<Vec<_>>()
    );
    println!(
        "Matched students: {} of {}",
        corrected.matching.matched_count(),
        dataset.len()
    );
    Ok(())
}
