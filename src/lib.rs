//! # fair-ranking — explainable disparity compensation for efficient fair ranking
//!
//! Umbrella crate for the Rust reproduction of *Explainable Disparity
//! Compensation for Efficient Fair Ranking* (Gale & Marian, ICDE 2024). It
//! re-exports the member crates so applications can depend on a single crate:
//!
//! * [`core`] ([`fair_core`]) — data model, fairness metrics, and the
//!   Disparity Compensation Algorithm (DCA),
//! * [`opt`] ([`fair_opt`]) — Adam, learning-rate schedules, rolling averages,
//! * [`data`] ([`fair_data`]) — synthetic NYC-school and COMPAS-like dataset
//!   generators, CSV I/O, splits,
//! * [`baselines`] ([`fair_baselines`]) — quota set-asides, Multinomial
//!   FA\*IR, and the (Δ+2)-approximation re-ranker,
//! * [`matching`] ([`fair_matching`]) — deferred-acceptance school choice,
//! * [`store`] ([`fair_store`]) — the persistent on-disk columnar shard store
//!   with LRU-cached out-of-core evaluation,
//! * [`serve`] ([`fair_serve`]) — the concurrent audit service: store
//!   catalog, synchronous metric endpoints, background DCA jobs, and the
//!   wire protocol + typed client.
//!
//! ## Quickstart
//!
//! ```
//! use fair_ranking::prelude::*;
//!
//! // Generate a small school-like cohort and learn bonus points for a 5%
//! // selection.
//! let cohort = SchoolGenerator::new(SchoolConfig::small(4_000, 1)).generate();
//! let rubric = SchoolGenerator::rubric();
//! let config = DcaConfig {
//!     sample_size: 400,
//!     iterations_per_rate: 30,
//!     refinement_iterations: 30,
//!     rolling_window: 30,
//!     ..DcaConfig::default()
//! };
//! let result = Dca::new(config)
//!     .run(cohort.dataset(), &rubric, &TopKDisparity::new(0.05))
//!     .unwrap();
//! println!("{}", result.bonus.explain());
//! assert!(result.report.disparity_after.norm() < result.report.disparity_before.norm());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use fair_baselines as baselines;
pub use fair_core as core;
pub use fair_data as data;
pub use fair_matching as matching;
pub use fair_opt as opt;
pub use fair_serve as serve;
pub use fair_store as store;

/// One-stop import for applications: everything from the core prelude plus
/// the dataset generators, baselines, and the matching simulator.
pub mod prelude {
    pub use fair_baselines::{
        binomial_mtable, caps_excluding_group, cartesian_subgroups, celis_rerank,
        most_disadvantaged_subgroups, quota_select, CelisConstraint, FaStarConfig, FaStarRanker,
        ProtectedGroup, QuotaConfig, Subgroup,
    };
    pub use fair_core::prelude::*;
    pub use fair_data::{
        holdout_split, stratified_split, CompasConfig, CompasGenerator, DatasetSummary,
        SchoolConfig, SchoolGenerator, RACE_GROUPS, SCHOOL_DISTRICTS,
    };
    pub use fair_matching::{
        deferred_acceptance, is_stable, AdmissionsOutcome, Matching, SchoolChoiceConfig,
        SchoolChoiceSimulator, SchoolRanking, StudentPreferences,
    };
    pub use fair_opt::{Adam, AdamConfig, LadderSchedule, RollingAverage, RollingWindow, Step};
    pub use fair_store::{write_source, CacheStats, ShardStore, StoreError, StoreWriter};
}
