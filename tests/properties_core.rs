//! Property-based tests (proptest) on the core data structures and
//! invariants: disparity bounds, selection sizes, bonus-vector operations,
//! nDCG bounds, FA*IR mtables, quota feasibility, and the stability of the
//! deferred-acceptance match.

use fair_ranking::prelude::*;
use proptest::prelude::*;

/// Strategy: a small population of (score, group-membership) pairs with at
/// least one member and one non-member.
fn population() -> impl Strategy<Value = Vec<(f64, bool)>> {
    proptest::collection::vec((0.0_f64..100.0, any::<bool>()), 10..120)
        .prop_filter("need both members and non-members", |v| {
            v.iter().any(|(_, m)| *m) && v.iter().any(|(_, m)| !*m)
        })
}

fn build_dataset(pop: &[(f64, bool)]) -> Dataset {
    let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
    let objects = pop
        .iter()
        .enumerate()
        .map(|(i, (score, member))| {
            DataObject::new_unchecked(
                i as u64,
                vec![*score],
                vec![f64::from(u8::from(*member))],
                Some(i % 3 == 0),
            )
        })
        .collect();
    Dataset::new(schema, objects).unwrap()
}

proptest! {
    /// Disparity is always within [-1, 1] per dimension, and zero when the
    /// whole population is selected.
    #[test]
    fn disparity_is_bounded_and_zero_for_full_selection(
        pop in population(),
        k in 0.01_f64..1.0,
        bonus in 0.0_f64..50.0,
    ) {
        let dataset = build_dataset(&pop);
        let view = dataset.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[bonus]));
        let disparity = disparity_at_k(&view, &ranking, k).unwrap();
        prop_assert!(disparity.iter().all(|d| (-1.0..=1.0).contains(d)));
        let full = disparity_at_k(&view, &ranking, 1.0).unwrap();
        prop_assert!(full.iter().all(|d| d.abs() < 1e-9));
    }

    /// The selection size is always within [1, n] and monotone in k.
    #[test]
    fn selection_size_is_monotone(n in 1_usize..5_000, k1 in 0.001_f64..1.0, k2 in 0.001_f64..1.0) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let s_lo = selection_size(n, lo).unwrap();
        let s_hi = selection_size(n, hi).unwrap();
        prop_assert!(s_lo >= 1 && s_hi <= n);
        prop_assert!(s_lo <= s_hi);
    }

    /// nDCG is in [0, 1] and equals 1 for the unchanged ranking.
    #[test]
    fn ndcg_bounds(pop in population(), k in 0.01_f64..1.0, bonus in 0.0_f64..50.0) {
        let dataset = build_dataset(&pop);
        let view = dataset.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let unchanged = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0]));
        prop_assert!((ndcg_at_k(&view, &ranker, &unchanged, k).unwrap() - 1.0).abs() < 1e-9);
        let adjusted = RankedSelection::from_scores(effective_scores(&view, &ranker, &[bonus]));
        let u = ndcg_at_k(&view, &ranker, &adjusted, k).unwrap();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// Bonus rounding lands on the requested grid and never violates the
    /// polarity; scaling by a proportion is linear in every coordinate.
    #[test]
    fn bonus_vector_operations(
        values in proptest::collection::vec(0.0_f64..30.0, 1..6),
        granularity in 0.1_f64..2.0,
        proportion in 0.0_f64..1.0,
    ) {
        let names: Vec<String> = (0..values.len()).map(|i| format!("a{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema = Schema::from_names(&["s"], &name_refs, &[]).unwrap();
        let bonus = BonusVector::new(schema, values.clone(), BonusPolarity::NonNegative).unwrap();
        let rounded = bonus.rounded_to(granularity).unwrap();
        for v in rounded.values() {
            prop_assert!(*v >= 0.0);
            let steps = v / granularity;
            prop_assert!((steps - steps.round()).abs() < 1e-6);
        }
        let scaled = bonus.scaled(proportion).unwrap();
        for (s, v) in scaled.values().iter().zip(&values) {
            prop_assert!((s - v * proportion).abs() < 1e-9);
        }
    }

    /// The FA*IR mtable is monotone non-decreasing in the prefix length and
    /// monotone non-decreasing in the target proportion.
    #[test]
    fn mtable_monotonicity(n in 1_usize..200, p1 in 0.0_f64..1.0, p2 in 0.0_f64..1.0, alpha in 0.01_f64..0.5) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let t_lo = binomial_mtable(n, lo, alpha);
        let t_hi = binomial_mtable(n, hi, alpha);
        prop_assert!(t_lo.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(t_lo.iter().zip(&t_hi).all(|(a, b)| a <= b));
        prop_assert!(t_hi.iter().enumerate().all(|(i, &m)| m <= i + 1));
    }

    /// A quota selection always returns exactly the requested number of seats
    /// and at least as many protected members as the unconstrained selection.
    #[test]
    fn quota_feasibility(pop in population(), k in 0.05_f64..1.0, reserve in 0.0_f64..1.0) {
        let dataset = build_dataset(&pop);
        let view = dataset.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(reserve, vec![0]).unwrap();
        let selected = quota_select(&view, &ranker, k, &config).unwrap();
        let expected = selection_size(dataset.len(), k).unwrap();
        prop_assert_eq!(selected.len(), expected);
        // No duplicates.
        let mut sorted = selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), expected);
        // At least as many protected members as the unconstrained top-k.
        let plain = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0]));
        let count = |positions: &[usize]| positions.iter().filter(|&&p| view.object(p).in_group(0)).count();
        prop_assert!(count(&selected) >= count(plain.selected(k).unwrap()));
    }

    /// Deferred acceptance always produces a stable matching that respects
    /// capacities.
    #[test]
    fn deferred_acceptance_is_stable(
        seed in 0_u64..5_000,
        num_students in 2_usize..40,
        num_schools in 1_usize..6,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random preference lists (possibly partial) and random school rankings.
        let students: Vec<StudentPreferences> = (0..num_students)
            .map(|_| {
                let mut listed: Vec<usize> = (0..num_schools).collect();
                for i in (1..listed.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    listed.swap(i, j);
                }
                let keep = rng.gen_range(0..=num_schools);
                StudentPreferences::new(listed.into_iter().take(keep).collect())
            })
            .collect();
        let schools: Vec<SchoolRanking> = (0..num_schools)
            .map(|_| {
                let scores: Vec<f64> = (0..num_students).map(|_| rng.gen()).collect();
                SchoolRanking::from_scores(&scores, rng.gen_range(0..=3))
            })
            .collect();
        let matching = deferred_acceptance(&students, &schools);
        for (school, roster) in matching.rosters().iter().enumerate() {
            prop_assert!(roster.len() <= schools[school].capacity());
        }
        let blocking = is_stable(&students, &schools, &matching);
        prop_assert!(blocking.is_empty(), "blocking pairs: {:?}", blocking);
    }

    /// The sample centroid is an unbiased estimator: over repeated samples the
    /// mean of the estimates stays close to the population centroid
    /// (Lemma 4.2's property, checked empirically).
    #[test]
    fn sample_centroid_estimates_population_centroid(pop in population(), seed in 0_u64..1_000) {
        use rand::SeedableRng;
        let dataset = build_dataset(&pop);
        let truth = dataset.fairness_centroid().unwrap()[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples = 60;
        let size = (dataset.len() / 2).max(5);
        let mut total = 0.0;
        for _ in 0..samples {
            let view = dataset.sample(&mut rng, size).unwrap();
            total += view.fairness_centroid().unwrap()[0];
        }
        let mean = total / samples as f64;
        prop_assert!((mean - truth).abs() < 0.15, "mean {mean} vs truth {truth}");
    }

    /// CSV serialization round-trips arbitrary (valid) datasets.
    #[test]
    fn csv_round_trip(pop in population()) {
        let dataset = build_dataset(&pop);
        let text = fair_ranking::data::csv::to_csv_string(&dataset);
        let parsed = fair_ranking::data::csv::from_csv_string(&text).unwrap();
        prop_assert_eq!(parsed.len(), dataset.len());
        for (a, b) in parsed.iter().zip(dataset.iter()) {
            prop_assert_eq!(a.id(), b.id());
            prop_assert_eq!(a.fairness(), b.fairness());
            prop_assert_eq!(a.label(), b.label());
            for (x, y) in a.features().iter().zip(b.features()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
