//! End-to-end acceptance tests for the `fair-serve` audit service: a real
//! server on an ephemeral port, a registered on-disk store, concurrent
//! clients, background DCA jobs with progress + cancellation, and a clean
//! shutdown.
//!
//! The central claims under test:
//!
//! 1. metric results fetched through the wire are **bit-identical** to the
//!    library path (`fair_core::metrics::sharded` over the same store), for
//!    every concurrent client;
//! 2. a completed Full-DCA job reproduces the **exact seeded trajectory** of
//!    `run_full_dca_sharded` with the same configuration;
//! 3. a long job is cancellable mid-run and reports the partial progress it
//!    made;
//! 4. shutdown drains every worker and job thread, after which the port no
//!    longer answers.

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::core::obs;
use fair_ranking::prelude::*;
use fair_ranking::serve::{
    serve, AuditService, Client, JobKind, JobRequest, MetricsRequest, ServeError,
};
use std::time::Duration;

const ROWS: usize = 3_000;
const RUBRIC_WEIGHTS: [f64; 2] = [0.55, 0.45];

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fair_serve_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.fss", std::process::id()))
}

/// Stream a school cohort onto disk and return the path.
fn school_store(name: &str) -> std::path::PathBuf {
    let path = temp_store(name);
    let generator = SchoolGenerator::new(SchoolConfig::small(ROWS, 4242));
    fair_ranking::data::store::school_to_store(&generator, default_shard_size(), &path).unwrap();
    path
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn service_end_to_end_concurrent_audits_jobs_and_shutdown() {
    let path = school_store("e2e");
    let server = serve(AuditService::new(), "127.0.0.1:0", 4).unwrap();
    let addr = server.addr();
    let client = Client::new(addr);

    // --- Registration + catalog surface -------------------------------
    client.health().unwrap();
    let info = client
        .register_disk_store("school", path.to_str().unwrap())
        .unwrap();
    assert_eq!(info.rows, ROWS);
    assert_eq!(info.kind, "disk");
    let listed = client.stores().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].name, "school");
    let (features, fairness) = client.schema("school").unwrap();
    assert_eq!(features.len(), RUBRIC_WEIGHTS.len());
    assert_eq!(fairness.len(), 4, "school schema has 4 fairness attributes");
    let stats = client.stats("school").unwrap();
    assert_eq!(stats.get("rows").unwrap().as_usize(), Some(ROWS));
    assert!(stats.get("cache").is_some(), "disk stores expose the cache");

    // --- Library reference values -------------------------------------
    let reference_store = ShardStore::open(&path).unwrap();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let k = 0.1;
    let bonus = vec![1.5, 0.0, 4.0, 0.25];
    let lib_disparity = shmetrics::disparity_at_k(&reference_store, &ranker, &bonus, k).unwrap();
    let lib_ndcg = shmetrics::ndcg_at_k(&reference_store, &ranker, &bonus, k).unwrap();

    // --- Concurrent clients, bit-identical results ---------------------
    let request = MetricsRequest {
        k,
        bonus: Some(bonus.clone()),
        weights: Some(RUBRIC_WEIGHTS.to_vec()),
        metrics: Some(vec!["disparity".into(), "ndcg".into()]),
    };
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let client = Client::new(addr);
            let request = request.clone();
            let lib_disparity = &lib_disparity;
            scope.spawn(move || {
                for _ in 0..3 {
                    let result = client.metrics("school", &request).unwrap();
                    assert_eq!(result.rows, ROWS);
                    assert_eq!(
                        bits(&result.disparity.clone().unwrap()),
                        bits(lib_disparity),
                        "wire disparity == library bits"
                    );
                    assert_eq!(result.ndcg.unwrap().to_bits(), lib_ndcg.to_bits());
                }
            });
        }
    });

    // --- A Full-DCA job reproduces the library trajectory --------------
    let job_req = JobRequest {
        store: "school".into(),
        kind: JobKind::Full,
        k,
        weights: Some(RUBRIC_WEIGHTS.to_vec()),
        seed: 77,
        sample_size: None,
        learning_rates: Some(vec![8.0, 1.0]),
        iterations_per_rate: Some(10),
        workers: None,
    };
    let submitted = client.submit_job(&job_req).unwrap();
    assert_eq!(submitted.total_steps, 20);
    let done = client
        .wait_for_job(&submitted.id, Duration::from_secs(120))
        .unwrap();
    assert_eq!(done.state, "completed", "error: {:?}", done.error);
    assert_eq!(done.step, 20, "progress counter reaches the total");
    let job_result = done.result.unwrap();

    let lib_config = DcaConfig {
        learning_rates: vec![8.0, 1.0],
        iterations_per_rate: 10,
        refinement_iterations: 0,
        seed: 77,
        ..DcaConfig::default()
    };
    let lib_dca = run_full_dca_sharded(
        &reference_store,
        &ranker,
        &TopKDisparity::new(k),
        &lib_config,
        None,
        false,
    )
    .unwrap();
    assert_eq!(
        bits(&job_result.bonus),
        bits(&lib_dca.bonus),
        "job trajectory == run_full_dca_sharded, bit for bit"
    );
    assert_eq!(job_result.steps, lib_dca.steps);
    assert_eq!(job_result.objects_scored, lib_dca.objects_scored);

    // --- A second, long job is cancellable mid-run ----------------------
    let long_req = JobRequest {
        store: "school".into(),
        kind: JobKind::Full,
        k,
        weights: Some(RUBRIC_WEIGHTS.to_vec()),
        seed: 78,
        sample_size: None,
        learning_rates: Some(vec![4.0, 2.0, 1.0, 0.5]),
        iterations_per_rate: Some(5_000),
        workers: None,
    };
    let long_job = client.submit_job(&long_req).unwrap();
    assert_eq!(long_job.total_steps, 20_000);
    // Wait for real progress so the cancellation demonstrably lands mid-run.
    let mut observed_step = 0;
    for _ in 0..3_000 {
        let view = client.job(&long_job.id).unwrap();
        observed_step = view.step;
        if observed_step >= 3 || view.is_terminal() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(observed_step >= 3, "the long job never reported progress");
    client.cancel_job(&long_job.id).unwrap();
    let cancelled = client
        .wait_for_job(&long_job.id, Duration::from_secs(60))
        .unwrap();
    assert_eq!(cancelled.state, "cancelled");
    assert!(
        cancelled.step < cancelled.total_steps,
        "cancelled well before the 20k steps ({} run)",
        cancelled.step
    );
    assert!(cancelled.result.is_none());

    // --- Clean shutdown -------------------------------------------------
    let jobs_before_shutdown = server.service().jobs.len();
    assert_eq!(jobs_before_shutdown, 2);
    server.shutdown();
    match Client::new(addr)
        .with_timeout(Duration::from_millis(500))
        .health()
    {
        Err(ServeError::Io(_) | ServeError::Protocol(_)) => {}
        other => panic!("the port must stop answering after shutdown, got {other:?}"),
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn wire_errors_surface_as_structured_api_failures() {
    let server = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
    let client = Client::new(server.addr());

    match client.metrics("ghost", &MetricsRequest::baseline(0.1)) {
        Err(ServeError::Api {
            status: 404,
            message,
        }) => {
            assert!(message.contains("ghost"), "{message}");
        }
        other => panic!("expected 404, got {other:?}"),
    }
    match client.register_disk_store("bad", "/nonexistent/path.fss") {
        Err(ServeError::Api { status: 422, .. }) => {}
        other => panic!("expected 422, got {other:?}"),
    }
    // Registering a synthetic cohort over the wire and auditing it.
    let info = client.register_synthetic("syn", "compas", 500, 9).unwrap();
    assert_eq!(info.kind, "memory");
    assert_eq!(info.rows, 500);
    let result = client
        .metrics(
            "syn",
            &MetricsRequest {
                k: 0.2,
                bonus: None,
                weights: None,
                metrics: Some(vec!["disparity".into(), "fpr_difference".into()]),
            },
        )
        .unwrap();
    assert!(result.disparity.is_some());
    assert!(result.fpr_difference.is_some(), "COMPAS rows are labelled");
    // Duplicate registration conflicts.
    match client.register_synthetic("syn", "compas", 10, 9) {
        Err(ServeError::Api { status: 409, .. }) => {}
        other => panic!("expected 409, got {other:?}"),
    }

    // A seed above 2^53 must round-trip the wire exactly (JSON numbers are
    // f64; the client switches to a string encoding): the job's trajectory
    // is the library trajectory for that very seed, not a rounded one.
    let big_seed = u64::MAX - 1; // not representable as f64
    let job = client
        .submit_job(&JobRequest {
            store: "syn".into(),
            kind: JobKind::Core,
            k: 0.2,
            weights: None,
            seed: big_seed,
            sample_size: Some(60),
            learning_rates: Some(vec![4.0, 1.0]),
            iterations_per_rate: Some(5),
            workers: None,
        })
        .unwrap();
    let done = client
        .wait_for_job(&job.id, Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.state, "completed", "error: {:?}", done.error);
    let local = CompasGenerator::new(CompasConfig::small(500, 9))
        .generate_sharded(default_shard_size())
        .unwrap();
    let num_features = local.schema().num_features();
    let uniform = WeightedSumRanker::new(vec![1.0; num_features]).unwrap();
    let lib = run_core_dca_sharded(
        &local,
        &uniform,
        &TopKDisparity::new(0.2),
        &DcaConfig {
            sample_size: 60,
            learning_rates: vec![4.0, 1.0],
            iterations_per_rate: 5,
            refinement_iterations: 0,
            seed: big_seed,
            ..DcaConfig::default()
        },
        None,
        false,
    )
    .unwrap();
    assert_eq!(
        bits(&done.result.unwrap().bonus),
        bits(&lib.bonus),
        "a >2^53 seed reaches the engine unrounded"
    );

    client.remove_store("syn").unwrap();
    assert!(client.stores().unwrap().is_empty());

    // A disk store whose backing file goes bad *after* registration: the
    // page-in panic must surface as a 500 on that request without killing
    // the worker — the pool keeps serving afterwards.
    let doomed = school_store("doomed");
    client
        .register_disk_store("doomed", doomed.to_str().unwrap())
        .unwrap();
    std::fs::write(&doomed, b"not a store anymore").unwrap();
    for _ in 0..4 {
        // More failing requests than workers: a killed worker would hang
        // the later ones instead of answering.
        match client.metrics("doomed", &MetricsRequest::baseline(0.1)) {
            Err(ServeError::Api {
                status: 500,
                message,
            }) => {
                assert!(message.contains("internal error"), "{message}");
            }
            other => panic!("expected 500 from the broken store, got {other:?}"),
        }
    }
    client.health().unwrap();
    std::fs::remove_file(doomed).ok();
    server.shutdown();
}

/// Check one Prometheus text-format line: a comment or `name{labels} value`.
///
/// The registry is process-global, so this test asserts shape and presence,
/// never exact counts — sibling tests in this binary record concurrently.
fn assert_prometheus_line(line: &str) {
    if let Some(rest) = line.strip_prefix("# TYPE ") {
        let mut parts = rest.split(' ');
        let name = parts.next().unwrap_or("");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        assert!(
            matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
            "bad TYPE kind in {line:?}"
        );
        assert_eq!(parts.next(), None, "trailing tokens in {line:?}");
        return;
    }
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line without a value: {line:?}");
    });
    assert!(
        value.parse::<f64>().is_ok(),
        "unparseable sample value in {line:?}"
    );
    let name = series.split('{').next().unwrap();
    assert!(
        name.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
        "bad series name in {line:?}"
    );
    if let Some(labels) = series
        .strip_prefix(name)
        .and_then(|s| s.strip_prefix('{'))
        .and_then(|s| s.strip_suffix('}'))
    {
        for pair in labels.split("\",") {
            let (k, v) = pair
                .split_once("=\"")
                .unwrap_or_else(|| panic!("bad label pair {pair:?} in {line:?}"));
            let v = v.strip_suffix('"').unwrap_or(v);
            assert!(!k.is_empty() && !v.contains('"'), "bad label in {line:?}");
        }
    }
}

#[test]
fn metrics_endpoint_exposes_every_layer_as_valid_prometheus_text() {
    let path = school_store("prom");
    let server = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
    let client = Client::new(server.addr());

    // Traffic through every layer: routes, a disk store, a finished job.
    client.health().unwrap();
    client
        .register_disk_store("prom", path.to_str().unwrap())
        .unwrap();
    client
        .metrics("prom", &MetricsRequest::baseline(0.1))
        .unwrap();
    let job = client
        .submit_job(&JobRequest {
            store: "prom".into(),
            kind: JobKind::Core,
            k: 0.1,
            weights: Some(RUBRIC_WEIGHTS.to_vec()),
            seed: 5,
            sample_size: Some(100),
            learning_rates: Some(vec![4.0]),
            iterations_per_rate: Some(3),
            workers: None,
        })
        .unwrap();
    let done = client
        .wait_for_job(&job.id, Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.state, "completed", "error: {:?}", done.error);
    // Wall-clock timings freeze at the terminal transition: two fetches of
    // a finished job agree exactly.
    std::thread::sleep(Duration::from_millis(15));
    let refetched = client.job(&job.id).unwrap();
    assert_eq!(refetched.queued_ms, done.queued_ms);
    assert_eq!(refetched.running_ms, done.running_ms);

    // A scrape reports previous scrapes, not itself: warm the route series
    // up with one throwaway scrape before asserting on the exposition.
    client.metrics_text().unwrap();
    let text = client.metrics_text().unwrap();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        assert_prometheus_line(line);
    }
    for needle in [
        "# TYPE fair_serve_requests_total counter",
        "# TYPE fair_serve_request_duration_us histogram",
        "fair_serve_route_requests_total{class=\"2xx\",route=\"GET /health\"}",
        "fair_serve_route_requests_total{class=\"2xx\",route=\"GET /metrics\"}",
        "fair_serve_request_duration_us_bucket{route=\"POST /stores/{name}/metrics\",le=\"+Inf\"}",
        "fair_serve_jobs_submitted_total{kind=\"core\"}",
        "fair_serve_jobs_finished_total{state=\"completed\"}",
        "fair_serve_job_step_duration_us_count{kind=\"core\"}",
        "fair_serve_stores_registered_total{kind=\"disk\"}",
        "fair_store_cache_misses_total",
        "fair_store_resident_bytes",
        "fair_serve_in_flight",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The unlabeled total is monotone across scrapes, and /health mirrors it.
    let count = |t: &str| -> u64 {
        t.lines()
            .find(|l| l.starts_with("fair_serve_requests_total "))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .map_or(0, |v| v as u64)
    };
    let first = count(&text);
    assert!(first > 0);
    let health = client.health_info().unwrap();
    assert!(health.get("uptime_ms").is_some(), "{health:?}");
    let reported = health
        .get("requests_total")
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(reported >= first, "health echoes the request counter");
    assert!(count(&client.metrics_text().unwrap()) > first);

    server.shutdown();
    std::fs::remove_file(path).ok();
}

#[test]
fn job_profile_accounts_for_the_running_time_and_carries_the_trace() {
    // A memory store keeps every phase on the job thread's scope tree (no
    // background page-ins), so the attributed phase total must match the
    // serve layer's wall clock: within 5% of `running_ms`, plus a small
    // absolute floor for millisecond rounding on either side.
    let server = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
    let trace = obs::next_trace_id();
    let client = Client::new(server.addr()).with_trace(&trace);
    client
        .register_synthetic("profiled", "school", 400_000, 11)
        .unwrap();
    let job = client
        .submit_job(&JobRequest {
            store: "profiled".into(),
            kind: JobKind::Full,
            k: 0.1,
            weights: Some(RUBRIC_WEIGHTS.to_vec()),
            seed: 3,
            sample_size: None,
            learning_rates: Some(vec![8.0, 1.0]),
            iterations_per_rate: Some(10),
            workers: None,
        })
        .unwrap();
    assert_eq!(
        job.trace, trace,
        "the job adopts the submitting request's trace id"
    );
    let done = client
        .wait_for_job(&job.id, Duration::from_secs(120))
        .unwrap();
    assert_eq!(done.state, "completed", "error: {:?}", done.error);
    assert_eq!(done.trace, trace, "status responses keep reporting it");

    let profile = client.job_profile(&job.id).unwrap();
    assert_eq!(profile.get("id").unwrap().as_str(), Some(job.id.as_str()));
    assert_eq!(profile.get("trace").unwrap().as_str(), Some(trace.as_str()));
    assert_eq!(profile.get("state").unwrap().as_str(), Some("completed"));
    let phases = profile.get("phases").unwrap();
    let mut total_us = 0.0;
    for name in ["page_in", "decode", "score", "sample", "combine", "wire"] {
        let entry = phases
            .get(name)
            .unwrap_or_else(|| panic!("phase `{name}` missing: {}", profile.render()));
        for field in ["total_us", "count", "max_us"] {
            assert!(entry.get(field).unwrap().as_f64().is_some());
        }
        total_us += entry.get("total_us").unwrap().as_f64().unwrap();
    }
    let score = phases.get("score").unwrap();
    assert_eq!(
        score.get("count").unwrap().as_u64(),
        Some(20),
        "a full descent opens one score scope per step"
    );
    let running_ms = profile.get("running_ms").unwrap().as_f64().unwrap();
    let total_ms = total_us / 1_000.0;
    assert!(
        (total_ms - running_ms).abs() <= 0.05 * running_ms + 4.0,
        "attributed {total_ms:.1} ms vs wall-clock {running_ms:.1} ms"
    );
    let steps = profile.get("steps").unwrap().as_arr().unwrap();
    assert!(!steps.is_empty() && steps.len() <= 32, "breakdown ring");
    for step in steps {
        assert!(step.get("step").unwrap().as_usize().is_some());
        assert!(step.get("phase_us").is_some());
    }

    // The per-job flush landed in the registry's profile histogram family.
    let text = client.metrics_text().unwrap();
    assert!(
        text.contains("fair_profile_phase_ms_count{phase=\"score\"}"),
        "terminal jobs flush phase totals into fair_profile_phase_ms:\n{text}"
    );
    server.shutdown();
}

#[test]
fn request_spans_carry_the_caller_supplied_trace_id() {
    let _guard = obs::capture();
    let server = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
    let trace = obs::next_trace_id();
    Client::new(server.addr())
        .with_trace(&trace)
        .health()
        .unwrap();
    server.shutdown();

    let spans: Vec<_> = obs::captured()
        .into_iter()
        .filter(|r| r.target == "serve.request" && r.field("trace") == Some(trace.as_str()))
        .collect();
    assert_eq!(spans.len(), 1, "exactly one handler span carries the id");
    assert_eq!(spans[0].kind, "span");
    assert_eq!(spans[0].field("path"), Some("/health"));
    assert_eq!(spans[0].field("status"), Some("200"));
    assert!(spans[0].duration_us.is_some());
}
