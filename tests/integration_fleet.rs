//! End-to-end tests for the fleet coordinator: real audit servers on
//! ephemeral ports acting as one DCA engine.
//!
//! The central claims under test:
//!
//! 1. a 3-worker fleet's Full- and Core-DCA trajectories and disparity
//!    sweeps are **bit-identical** to the local sharded runners;
//! 2. under every `FAIR_FAULT` failure mode on the partial-reduce path, a
//!    run that the coordinator reports as successful is still bit-identical
//!    — retries never double-count a shard range;
//! 3. a worker killed mid-descent has its range re-dispatched to the
//!    survivors and the descent still completes bit-identically;
//! 4. a 500-burst ejects a worker, and health probes re-admit it once the
//!    burst passes.

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::core::obs;
use fair_ranking::prelude::*;
use fair_ranking::serve::{
    serve, AuditService, Client, FleetConfig, FleetCoordinator, JobKind, JobRequest, ServerHandle,
};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

const ROWS: usize = 2_000;
const SEED: u64 = 4242;
const RUBRIC_WEIGHTS: [f64; 2] = [0.55, 0.45];

/// The fault plan is process-global; tests that rely on it (or on its
/// absence) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Spawn `n` audit servers, each holding the same deterministic school
/// cohort under the name `cohort`.
///
/// The default 64Ki shard size would put the whole 2,000-row cohort in one
/// shard and leave every worker but the first with an empty range; pin the
/// shard size so the placement genuinely spreads work across the fleet.
/// (Callers hold `FAULT_LOCK`, and [`local_cohort`] reads the same knob, so
/// both sides of every parity check shard identically.)
fn spawn_fleet(n: usize) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    std::env::set_var("FAIR_SHARD_SIZE", "256");
    let mut handles = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let server = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
        Client::new(server.addr())
            .register_synthetic("cohort", "school", ROWS, SEED)
            .unwrap();
        addrs.push(server.addr());
        handles.push(server);
    }
    (handles, addrs)
}

/// The same cohort the workers hold, built locally for reference runs.
fn local_cohort() -> ShardedDataset {
    SchoolGenerator::new(SchoolConfig::small(ROWS, SEED))
        .generate_sharded(default_shard_size())
        .unwrap()
        .into_dataset()
}

fn quick_config(seed: u64) -> DcaConfig {
    DcaConfig {
        sample_size: 200,
        learning_rates: vec![8.0, 1.0],
        iterations_per_rate: 6,
        refinement_iterations: 0,
        seed,
        ..DcaConfig::default()
    }
}

#[test]
fn three_worker_fleet_matches_the_local_sharded_runners_bitwise() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handles, addrs) = spawn_fleet(3);
    let fleet = FleetCoordinator::connect("cohort", &addrs, FleetConfig::default()).unwrap();
    assert_eq!(fleet.rows(), ROWS);
    assert_eq!(fleet.placement().num_workers(), 3);
    assert_eq!(
        fleet.placement().num_shards(),
        8,
        "2,000 rows / 256-row shards: every worker owns a non-empty range"
    );

    let local = local_cohort();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let k = 0.1;
    let config = quick_config(41);

    // Disparity sweep.
    let bonus = vec![1.5, 0.0, 4.0, 0.25];
    let wire = fleet.disparity(k, &bonus, Some(&RUBRIC_WEIGHTS)).unwrap();
    let lib = shmetrics::disparity_at_k(&local, &ranker, &bonus, k).unwrap();
    assert_eq!(bits(&wire), bits(&lib), "fleet disparity == library bits");

    // Full DCA.
    let fleet_full = fleet
        .run_full_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, true)
        .unwrap();
    let lib_full =
        run_full_dca_sharded(&local, &ranker, &TopKDisparity::new(k), &config, None, true).unwrap();
    assert_eq!(bits(&fleet_full.bonus), bits(&lib_full.bonus));
    assert_eq!(fleet_full.steps, lib_full.steps);
    for (a, b) in fleet_full.trace.iter().zip(&lib_full.trace) {
        assert_eq!(a.bonus, b.bonus, "full trace step {}", a.step);
    }

    // Core DCA.
    let fleet_core = fleet
        .run_core_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, true)
        .unwrap();
    let lib_core =
        run_core_dca_sharded(&local, &ranker, &TopKDisparity::new(k), &config, None, true).unwrap();
    assert_eq!(bits(&fleet_core.bonus), bits(&lib_core.bonus));
    assert_eq!(fleet_core.objects_scored, lib_core.objects_scored);
    for (a, b) in fleet_core.trace.iter().zip(&lib_core.trace) {
        assert_eq!(a.bonus, b.bonus, "core trace step {}", a.step);
    }

    let report = fleet.report();
    assert!(report.requests > 0);
    assert_eq!(
        report.re_dispatches, 0,
        "a healthy fleet never fails over: {report:?}"
    );
    assert_eq!(
        report.partials_cache_hits, 0,
        "a first descent has no repeated sample keys: {report:?}"
    );

    // A re-run of the same descent replays identical `(seed, step)` sample
    // requests: every worker answers from its gather LRU, the trajectory is
    // unchanged, and the coordinator surfaces the hits.
    let rerun = fleet
        .run_core_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, false)
        .unwrap();
    assert_eq!(bits(&rerun.bonus), bits(&lib_core.bonus));
    let report = fleet.report();
    assert!(
        report.partials_cache_hits > 0,
        "a replayed descent must hit the worker-side sample cache: {report:?}"
    );
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn fault_matrix_runs_stay_bit_identical_whenever_the_coordinator_succeeds() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handles, addrs) = spawn_fleet(3);
    let fleet = FleetCoordinator::connect(
        "cohort",
        &addrs,
        FleetConfig {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    let local = local_cohort();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let k = 0.1;
    let config = quick_config(97);
    let reference = run_core_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(k),
        &config,
        None,
        false,
    )
    .unwrap();

    // Every fault mode on the partial-reduce path, two injections each.
    // Each run must either fail loudly or produce the exact local result.
    for spec in [
        "serve@partials:delay:40:2",
        "serve@partials:drop:2",
        "serve@partials:corrupt:2",
        "serve@partials:500:2",
        "serve@partials:close-mid-body:2",
    ] {
        fair_ranking::core::fault::install(
            fair_ranking::core::fault::FaultPlan::parse(spec).unwrap(),
        );
        let outcome = fleet
            .run_core_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, false)
            .unwrap_or_else(|e| panic!("{spec}: coordinator gave up: {e}"));
        fair_ranking::core::fault::install(fair_ranking::core::fault::FaultPlan::none());
        assert_eq!(
            bits(&outcome.bonus),
            bits(&reference.bonus),
            "{spec}: a run the coordinator reports as success must be exact"
        );
    }
    let report = fleet.report();
    assert!(
        report.retries >= 4,
        "drop/corrupt/500/close-mid-body must each force retries: {report:?}"
    );
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn killing_a_worker_mid_descent_re_dispatches_its_range() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut handles, addrs) = spawn_fleet(3);
    let fleet = FleetCoordinator::connect(
        "cohort",
        &addrs,
        FleetConfig {
            request_timeout: Duration::from_secs(5),
            max_attempts: 2,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            eject_after: 2,
            probe_every: 1_000, // don't waste rounds probing the corpse
            connect_retries: 0,
        },
    )
    .unwrap();

    let config = quick_config(53);
    let k = 0.1;

    // The middle worker serves real traffic first, then dies: every later
    // round must fail over its range to a survivor.
    let bonus = vec![0.5, 0.0, 1.0, 0.0];
    fleet.disparity(k, &bonus, Some(&RUBRIC_WEIGHTS)).unwrap();
    assert_eq!(fleet.report().re_dispatches, 0, "all three alive so far");
    handles.remove(1).shutdown();

    let fleet_full = fleet
        .run_full_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, false)
        .unwrap();

    let local = local_cohort();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let lib_full = run_full_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(k),
        &config,
        None,
        false,
    )
    .unwrap();
    assert_eq!(
        bits(&fleet_full.bonus),
        bits(&lib_full.bonus),
        "losing a worker mid-run must not change the trajectory"
    );
    let report = fleet.report();
    assert!(
        report.re_dispatches > 0,
        "the dead worker's range must move to a survivor: {report:?}"
    );
    assert!(
        fleet.workers().iter().any(|w| !w.healthy),
        "the dead worker must be ejected: {:?}",
        fleet.workers()
    );
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn one_trace_id_spans_coordinator_retries_and_worker_handlers() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _capture = obs::capture();
    // The capture buffer is shared and append-only; other tests in this
    // binary (serialized by FAULT_LOCK) leave their own fleet traffic in
    // it, so only look at records emitted from here on.
    let base = obs::captured().len();
    let (handles, addrs) = spawn_fleet(2);
    let fleet = FleetCoordinator::connect(
        "cohort",
        &addrs,
        FleetConfig {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    // A 500 burst on the partial-reduce path forces coordinator retries;
    // the workers are in-process, so their handler spans land in the same
    // capture buffer as the coordinator's events.
    fair_ranking::core::fault::install(
        fair_ranking::core::fault::FaultPlan::parse("serve@partials:500:2").unwrap(),
    );
    let bonus = vec![0.5, 0.0, 1.0, 0.0];
    fleet.disparity(0.1, &bonus, Some(&RUBRIC_WEIGHTS)).unwrap();
    fair_ranking::core::fault::install(fair_ranking::core::fault::FaultPlan::none());
    assert!(fleet.report().retries >= 1, "{:?}", fleet.report());

    let records = obs::captured().split_off(base);
    // Anchor on this coordinator's retry events and follow their trace id
    // down to the worker spans.
    let retry = records
        .iter()
        .find(|r| r.target == "fleet.retry")
        .expect("the 500 burst must emit a retry event");
    let trace = retry.field("trace").expect("retries carry the trace id");
    let fan_out = records
        .iter()
        .find(|r| r.target == "fleet.fan_out" && r.field("trace") == Some(trace))
        .expect("the retry's trace id names a fan-out round");
    assert_eq!(fan_out.kind, "span");
    assert_eq!(fan_out.field("store"), Some("cohort"));
    let worker_spans: Vec<_> = records
        .iter()
        .filter(|r| r.target == "serve.request" && r.field("trace") == Some(trace))
        .collect();
    assert!(
        worker_spans.len() >= 2,
        "the retried range reaches a worker handler at least twice under \
         the same trace id, got {}",
        worker_spans.len()
    );
    assert!(
        worker_spans
            .iter()
            .all(|r| r.field("path").is_some_and(|p| p.ends_with("/partials"))),
        "{worker_spans:?}"
    );

    for h in handles {
        h.shutdown();
    }
}

#[test]
fn a_traced_job_pins_one_id_from_submit_to_worker_spans_under_faults() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _capture = obs::capture();
    let (handles, addrs) = spawn_fleet(3);

    // A fourth node fronts the fleet: a job submitted to it with `workers`
    // fans its descent out to the three workers, and everything the job
    // touches — accept, queue, every step, every fan-out round, every retry,
    // every worker handler — must carry the *submitting request's* trace id.
    let front = serve(AuditService::new(), "127.0.0.1:0", 2).unwrap();
    let trace = obs::next_trace_id();
    let client = Client::new(front.addr()).with_trace(&trace);
    client
        .register_synthetic("cohort", "school", ROWS, SEED)
        .unwrap();

    // A 500 burst on the partial-reduce path forces coordinator retries
    // mid-job; retried dispatches must not mint fresh ids.
    fair_ranking::core::fault::install(
        fair_ranking::core::fault::FaultPlan::parse("serve@partials:500:2").unwrap(),
    );
    let config = quick_config(97);
    let job = client
        .submit_job(&JobRequest {
            store: "cohort".into(),
            kind: JobKind::Core,
            k: 0.1,
            weights: Some(RUBRIC_WEIGHTS.to_vec()),
            seed: config.seed,
            sample_size: Some(config.sample_size),
            learning_rates: Some(config.learning_rates.clone()),
            iterations_per_rate: Some(config.iterations_per_rate),
            workers: Some(addrs.iter().map(SocketAddr::to_string).collect()),
        })
        .unwrap();
    assert_eq!(job.trace, trace, "the job adopts the submitter's trace id");
    let done = client
        .wait_for_job(&job.id, Duration::from_secs(60))
        .unwrap();
    fair_ranking::core::fault::install(fair_ranking::core::fault::FaultPlan::none());
    assert_eq!(done.state, "completed", "error: {:?}", done.error);

    // The faulted fleet run still lands on the exact local trajectory.
    let local = local_cohort();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let reference = run_core_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(0.1),
        &config,
        None,
        false,
    )
    .unwrap();
    assert_eq!(
        bits(&done.result.as_ref().unwrap().bonus),
        bits(&reference.bonus),
        "a traced fleet job under faults is still bit-identical"
    );

    let records = obs::captured();
    let with_trace = |target: &str| {
        records
            .iter()
            .filter(|r| r.target == target && r.field("trace") == Some(&trace))
            .count()
    };
    assert!(with_trace("job.submit") >= 1, "accept event traced");
    assert!(
        with_trace("job.step") >= config.learning_rates.len() * config.iterations_per_rate,
        "every descent step event traced"
    );
    assert!(
        with_trace("job.state") >= 2,
        "queued/running/terminal traced"
    );
    assert!(
        with_trace("fleet.fan_out") >= 1,
        "fan-out rounds reuse the job's id instead of minting per round"
    );
    assert!(with_trace("fleet.retry") >= 1, "retries stay correlated");
    let worker_partials = records
        .iter()
        .filter(|r| {
            r.target == "serve.request"
                && r.field("trace") == Some(&trace)
                && r.field("path").is_some_and(|p| p.ends_with("/partials"))
        })
        .count();
    assert!(
        worker_partials >= 2,
        "worker handler spans (incl. the retried range) carry the job's id, \
         got {worker_partials}"
    );
    assert!(
        with_trace("serve.request") > worker_partials,
        "the front node's own request spans (submit, polls) share the id too"
    );

    front.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn a_500_burst_ejects_then_probes_readmit_the_worker() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handles, addrs) = spawn_fleet(3);
    let fleet = FleetCoordinator::connect(
        "cohort",
        &addrs,
        FleetConfig {
            max_attempts: 1, // any failure fails over immediately
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            eject_after: 1,
            probe_every: 1, // probe ejected workers every round
            ..FleetConfig::default()
        },
    )
    .unwrap();

    // Two injections: with `max_attempts: 1` each 500 fails a range over to
    // the next candidate, but no single range can exhaust all three workers.
    fair_ranking::core::fault::install(
        fair_ranking::core::fault::FaultPlan::parse("serve@partials:500:2").unwrap(),
    );
    let k = 0.1;
    let config = quick_config(7);
    let outcome = fleet
        .run_core_dca(k, Some(&RUBRIC_WEIGHTS), &config, None, false)
        .unwrap();
    fair_ranking::core::fault::install(fair_ranking::core::fault::FaultPlan::none());

    let local = local_cohort();
    let ranker = WeightedSumRanker::new(RUBRIC_WEIGHTS.to_vec()).unwrap();
    let reference = run_core_dca_sharded(
        &local,
        &ranker,
        &TopKDisparity::new(k),
        &config,
        None,
        false,
    )
    .unwrap();
    assert_eq!(bits(&outcome.bonus), bits(&reference.bonus));

    let report = fleet.report();
    assert!(report.ejections >= 1, "a 500 burst must eject: {report:?}");
    assert!(
        report.re_dispatches >= 1,
        "ejected ranges must fail over: {report:?}"
    );
    assert!(
        fleet.workers().iter().all(|w| w.healthy),
        "probes must re-admit once the burst passes: {:?}",
        fleet.workers()
    );
    for h in handles {
        h.shutdown();
    }
}
