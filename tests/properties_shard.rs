//! Property tests guarding the sharded data plane: evaluating any metric —
//! or running Full DCA — through the shard-wise parallel engine must be
//! **bit-for-bit** identical to the serial single-`Dataset` path, for every
//! shard size (one row per shard, a small prime, and the production 64k),
//! including cohorts whose final shard is short.
//!
//! The generated values all sit on dyadic grids (scores on 1/64, fairness on
//! 1/256, dyadic bonuses), so every partial-sum combine the engine performs
//! is exact and the bitwise claim is meaningful rather than accidental; see
//! the determinism notes on `fair_core::shard`.

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::core::ranking::sharded as shranking;
use fair_ranking::prelude::*;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Shard sizes the satellite checklist calls out: degenerate (1), a small
/// prime that rarely divides the cohort (7), and the production default.
const SHARD_SIZES: [usize; 3] = [1, 7, 64 * 1024];

/// One generated row: score numerator, binary group flag, continuous-need
/// numerator, outcome label.
type Row = (u32, bool, u16, bool);

fn dataset_from_rows(rows: &[Row]) -> Dataset {
    let schema = Schema::from_names(&["score"], &["grp", "need"], &[]).unwrap();
    let objects: Vec<DataObject> = rows
        .iter()
        .enumerate()
        .map(|(i, &(score, member, need, label))| {
            DataObject::new_unchecked(
                i as u64,
                vec![f64::from(score) / 64.0],
                vec![f64::from(u8::from(member)), f64::from(need) / 256.0],
                Some(label),
            )
        })
        .collect();
    Dataset::new(schema, objects).unwrap()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn row_strategy() -> impl Strategy<Value = Vec<Row>> {
    pvec(
        (0_u32..8192, any::<bool>(), 0_u16..257, any::<bool>()),
        8..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every whole-cohort metric evaluated through the sharded engine equals
    /// the serial evaluation bit-for-bit, at every shard size.
    #[test]
    fn sharded_metrics_match_serial_bit_for_bit(
        rows in row_strategy(),
        k in 0.02_f64..1.0,
    ) {
        let flat = dataset_from_rows(&rows);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = [2.5_f64, 0.25];
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &bonus));

        let serial_disp = disparity_at_k(&view, &ranking, k).unwrap();
        let serial_ndcg = ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
        let log_cfg = LogDiscountConfig { step: 5, max_fraction: 0.5 };
        let serial_log = log_discounted_disparity(&view, &ranking, &log_cfg).unwrap();
        let serial_fpr = fpr_difference_at_k(&view, &ranking, k).unwrap();
        let serial_di =
            fair_ranking::core::metrics::scaled_disparate_impact_at_k(&view, &ranking, k).unwrap();

        for shard_size in SHARD_SIZES {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            prop_assert_eq!(data.len(), flat.len());

            let sharded_disp = shmetrics::disparity_at_k(&data, &ranker, &bonus, k).unwrap();
            prop_assert_eq!(bits(&serial_disp), bits(&sharded_disp),
                "disparity, shard size {}", shard_size);

            let sharded_ndcg = shmetrics::ndcg_at_k(&data, &ranker, &bonus, k).unwrap();
            prop_assert_eq!(serial_ndcg.to_bits(), sharded_ndcg.to_bits(),
                "ndcg, shard size {}", shard_size);

            let sharded_log =
                shmetrics::log_discounted_disparity(&data, &ranker, &bonus, &log_cfg).unwrap();
            prop_assert_eq!(bits(&serial_log), bits(&sharded_log),
                "log-discounted, shard size {}", shard_size);

            let sharded_fpr = shmetrics::fpr_difference_at_k(&data, &ranker, &bonus, k).unwrap();
            prop_assert_eq!(bits(&serial_fpr), bits(&sharded_fpr),
                "fpr, shard size {}", shard_size);

            let sharded_di =
                shmetrics::scaled_disparate_impact_at_k(&data, &ranker, &bonus, k).unwrap();
            prop_assert_eq!(bits(&serial_di), bits(&sharded_di),
                "disparate impact, shard size {}", shard_size);
        }
    }

    /// The sharded selection layer reproduces the serial ranking exactly:
    /// scores, top-m prefixes, and per-row ranks.
    #[test]
    fn sharded_selection_matches_serial(
        rows in row_strategy(),
        k in 0.02_f64..1.0,
    ) {
        let flat = dataset_from_rows(&rows);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = [1.5_f64, 0.5];
        let serial_scores = effective_scores(&view, &ranker, &bonus);
        let ranking = RankedSelection::from_scores(serial_scores.clone());
        let m = selection_size(flat.len(), k).unwrap();

        for shard_size in SHARD_SIZES {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let scores = shranking::effective_scores(&data, &ranker, &bonus);
            prop_assert_eq!(bits(&serial_scores), bits(&scores),
                "scores, shard size {}", shard_size);
            prop_assert_eq!(shranking::top_m(&data, &scores, m), ranking.top(m).to_vec(),
                "top-m, shard size {}", shard_size);
            let probe = rows.len() / 2;
            prop_assert_eq!(Some(shranking::rank_of(&data, &scores, probe)),
                ranking.rank_of(probe), "rank, shard size {}", shard_size);
        }
    }

    /// Full DCA through the sharded engine walks the exact serial bonus
    /// trajectory — every step's centroid accumulation, direction, and clamp
    /// reproduce bit for bit at every shard size.
    #[test]
    fn sharded_full_dca_centroids_match_serial_bit_for_bit(
        rows in pvec((0_u32..8192, any::<bool>(), 0_u16..257, any::<bool>()), 30..120),
        k in 0.05_f64..0.6,
    ) {
        let flat = dataset_from_rows(&rows);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let objective = TopKDisparity::new(k);
        let config = DcaConfig {
            learning_rates: vec![8.0, 0.5],
            iterations_per_rate: 4,
            refinement_iterations: 0,
            ..DcaConfig::default()
        };
        let serial = run_full_dca(&flat, &ranker, &objective, &config, None, true).unwrap();
        for shard_size in SHARD_SIZES {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let sharded =
                run_full_dca_sharded(&data, &ranker, &objective, &config, None, true).unwrap();
            prop_assert_eq!(bits(&serial.bonus), bits(&sharded.bonus),
                "final bonus, shard size {}", shard_size);
            prop_assert_eq!(serial.steps, sharded.steps);
            prop_assert_eq!(serial.objects_scored, sharded.objects_scored);
            for (s, t) in serial.trace.iter().zip(&sharded.trace) {
                prop_assert_eq!(bits(&s.bonus), bits(&t.bonus),
                    "trace step {}, shard size {}", s.step, shard_size);
                prop_assert_eq!(s.objective_norm.to_bits(), t.objective_norm.to_bits());
            }
        }
    }
}

/// A fixed non-divisible case (23 rows, shard size 7 → shards 7/7/7/2) so the
/// short-final-shard path is exercised even if a proptest run happens to draw
/// only divisible lengths.
#[test]
fn short_final_shard_is_bitwise_equivalent() {
    let rows: Vec<Row> = (0..23_u32)
        .map(|i| {
            (
                (i * 517) % 8192,
                i % 3 == 0,
                ((i * 97) % 257) as u16,
                i % 2 == 0,
            )
        })
        .collect();
    let flat = dataset_from_rows(&rows);
    let view = flat.full_view();
    let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
    let bonus = [2.5_f64, 0.25];
    let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &bonus));
    let data = ShardedDataset::from_dataset(&flat, 7).unwrap();
    assert_eq!(data.num_shards(), 4);
    assert_eq!(data.shard(3).len(), 2);
    for k in [0.05, 0.3, 1.0] {
        let serial = disparity_at_k(&view, &ranking, k).unwrap();
        let sharded = shmetrics::disparity_at_k(&data, &ranker, &bonus, k).unwrap();
        assert_eq!(bits(&serial), bits(&sharded), "k {k}");
        let serial_ndcg = ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
        let sharded_ndcg = shmetrics::ndcg_at_k(&data, &ranker, &bonus, k).unwrap();
        assert_eq!(serial_ndcg.to_bits(), sharded_ndcg.to_bits(), "ndcg k {k}");
    }
}
