//! End-to-end integration test of the COMPAS audit pipeline (Figures 10a/10b):
//! generator → decile ranking → non-positive DCA → disparity and FPR
//! evaluation.

use fair_ranking::prelude::*;

fn compas_config() -> DcaConfig {
    DcaConfig {
        polarity: BonusPolarity::NonPositive,
        sample_size: 400,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 50,
        refinement_iterations: 50,
        rolling_window: 50,
        seed: 5,
        ..DcaConfig::default()
    }
}

#[test]
fn flagged_set_disparity_is_reduced_with_non_positive_bonuses() {
    let dataset = CompasGenerator::new(CompasConfig::small(5_000, 3)).generate();
    let ranker = CompasGenerator::decile_ranker();
    let k = 0.3;

    let result = Dca::new(compas_config())
        .run(&dataset, &ranker, &TopKDisparity::new(k))
        .expect("DCA run");

    let before = result.report.disparity_before;
    let after = result.report.disparity_after;
    // African-American defendants (dim 0) are over-flagged before correction.
    assert!(before.values()[0] > 0.03, "{:?}", before.values());
    assert!(
        after.norm() < before.norm(),
        "{} vs {}",
        after.norm(),
        before.norm()
    );
    // The adjustment only ever subtracts points.
    assert!(result.bonus.values().iter().all(|v| *v <= 0.0));
}

#[test]
fn fpr_objective_narrows_false_positive_gaps() {
    let dataset = CompasGenerator::new(CompasConfig::small(5_000, 7)).generate();
    let ranker = CompasGenerator::decile_ranker();
    let k = 0.3;
    let view = dataset.full_view();
    let dims = dataset.schema().num_fairness();

    // Per-group FPR minus the overall FPR; dimension 0 is african_american,
    // the group the original ProPublica analysis found over-flagged.
    let gaps = |bonus: &[f64]| -> Vec<f64> {
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, bonus));
        let (per_group, overall) = group_fpr_at_k(&view, &ranking, k).unwrap();
        per_group.iter().map(|f| f - overall).collect()
    };

    let before = gaps(&vec![0.0; dims]);
    let result = Dca::new(compas_config())
        .run(&dataset, &ranker, &FprDifferenceObjective::new(k))
        .expect("FPR-driven DCA run");
    let after = gaps(result.bonus.values());
    assert!(
        before[0] > 0.05,
        "the over-flagged group has an FPR excess before correction: {before:?}"
    );
    // The headline gap (over-flagged group vs the population) shrinks; the
    // overall vector norm may wobble because the smallest race groups have
    // only a handful of true negatives at this cohort size.
    assert!(
        after[0].abs() < before[0].abs(),
        "over-flagged group's FPR excess shrinks: {after:?} vs {before:?}"
    );
    assert!(
        norm(&after) < norm(&before) * 1.5,
        "no blow-up of the remaining gaps"
    );
}

#[test]
fn decile_scores_are_coarse_but_log_discounted_mode_still_helps() {
    let dataset = CompasGenerator::new(CompasConfig::small(5_000, 11)).generate();
    let ranker = CompasGenerator::decile_ranker();
    let result = Dca::new(compas_config())
        .run(
            &dataset,
            &ranker,
            &LogDiscountedObjective::new(LogDiscountConfig {
                step: 10,
                max_fraction: 0.5,
            }),
        )
        .expect("log-discounted DCA run");

    let view = dataset.full_view();
    let ks: Vec<f64> = (1..=10).map(|i| i as f64 * 0.05).collect();
    let avg = |bonus: &[f64]| -> f64 {
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, bonus));
        ks.iter()
            .map(|&k| norm(&disparity_at_k(&view, &ranking, k).unwrap()))
            .sum::<f64>()
            / ks.len() as f64
    };
    let dims = dataset.schema().num_fairness();
    let before = avg(&vec![0.0; dims]);
    let after = avg(result.bonus.values());
    assert!(after < before, "{after} vs {before}");
}
