//! Property tests for the chunked f64x4 kernel layer (`fair_core::kernel`).
//!
//! The central claim: every chunked kernel follows ONE canonical 4-lane
//! accumulation order (lane `j` sums elements `4i + j` over complete
//! 4-blocks, lanes combine as `(l0 + l1) + (l2 + l3)`, the `n % 4` tail is
//! added sequentially after the combine), and for `n < 4` degenerates to
//! the sequential reference loop **bit for bit** — including `-0.0`,
//! infinities, and NaN payload propagation through the accumulator.
//!
//! Every test drives both families through the `*_with` entry points (no
//! process-global state), sweeping tail remainders `n % 4 ∈ {0,1,2,3}` and
//! feature counts `{1,3,4,5,8}` so each const-generic specialization and
//! the runtime-dims fallback are all exercised.

use fair_ranking::core::kernel::{self, Kernel};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A finite value plus occasional NaN / infinity / signed-zero specials:
/// the kernels must agree (bitwise where the order is shared, NaN-presence
/// where it is not) even on poisoned rows.
fn special_f64() -> impl Strategy<Value = f64> {
    (0_u32..12, -1.0e6_f64..1.0e6).prop_map(|(pick, finite)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f64::NAN,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        _ => finite,
    })
}

/// Maps a draw from `0..table.len()` to the table entry: the vendored
/// proptest has no `sample::select`, so shape sweeps draw an index.
fn pick(table: &'static [usize]) -> impl Strategy<Value = usize> {
    (0_usize..table.len()).prop_map(move |i| table[i])
}

/// The documented reference order, written out longhand: the oracle the
/// chunked family is checked against for `n >= 4`, independent of the
/// implementation under test.
fn canonical_dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let blocks = n / 4;
    let mut lanes = [-0.0_f64; 4];
    for i in 0..blocks {
        for j in 0..4 {
            lanes[j] += a[4 * i + j] * b[4 * i + j];
        }
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in 4 * blocks..n {
        sum += a[i] * b[i];
    }
    sum
}

/// The canonical column-sum order, written out longhand: lane `j` folds
/// rows `4i + j`, lanes combine as `(l0 + l1) + (l2 + l3)` per column, tail
/// rows append sequentially after the combine.
fn canonical_col_sums(matrix: &[f64], dims: usize) -> Vec<f64> {
    let rows = matrix.len() / dims;
    let blocks = rows / 4;
    let mut lanes = vec![0.0_f64; 4 * dims];
    for i in 0..blocks {
        for j in 0..4 {
            let row = &matrix[(4 * i + j) * dims..(4 * i + j + 1) * dims];
            for (a, v) in lanes[j * dims..(j + 1) * dims].iter_mut().zip(row) {
                *a += v;
            }
        }
    }
    let mut out = vec![0.0_f64; dims];
    for d in 0..dims {
        out[d] = (lanes[d] + lanes[dims + d]) + (lanes[2 * dims + d] + lanes[3 * dims + d]);
    }
    for r in 4 * blocks..rows {
        for (a, v) in out.iter_mut().zip(&matrix[r * dims..(r + 1) * dims]) {
            *a += v;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For `n < 4` the chunked dot IS the scalar dot, bit for bit — no
    /// reassociation exists to hide behind.
    #[test]
    fn short_dots_agree_bitwise_across_families(
        a in pvec(special_f64(), 0..4),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 - 1.0).collect();
        let chunked = kernel::dot_with(&a, &b, Kernel::Chunked);
        let scalar = kernel::dot_with(&a, &b, Kernel::Scalar);
        prop_assert_eq!(chunked.to_bits(), scalar.to_bits());
    }

    /// For any length the chunked dot follows the canonical 4-lane order
    /// exactly (and the scalar one the sequential order), so cross-path
    /// parity never depends on which call site computed the dot. NaN
    /// results compare as NaN-to-NaN rather than bitwise: which operand's
    /// NaN payload a multiply propagates is the one thing IEEE leaves to
    /// the implementation, and LLVM may commute operands between this
    /// oracle and the kernel.
    #[test]
    fn chunked_dot_is_the_canonical_order_bitwise(
        a in pvec(special_f64(), 0..67),
    ) {
        let same = |x: f64, y: f64| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
        let b: Vec<f64> = a.iter().rev().cloned().collect();
        let chunked = kernel::dot_with(&a, &b, Kernel::Chunked);
        let oracle = canonical_dot(&a, &b);
        prop_assert!(same(chunked, oracle), "chunked {:x} vs {:x}", chunked.to_bits(), oracle.to_bits());
        let scalar = kernel::dot_with(&a, &b, Kernel::Scalar);
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!(same(scalar, reference), "scalar {:x} vs {:x}", scalar.to_bits(), reference.to_bits());
    }

    /// Row-batch scoring: for every feature count (each const-generic
    /// specialization plus the runtime fallback) and every row-count tail
    /// remainder, each output row equals the single-row dot of its family —
    /// batching must never change a row's bits. NaN-bearing rows poison
    /// only their own output.
    #[test]
    fn batched_rows_equal_single_row_dots_bitwise(
        dims in pick(&[1, 3, 4, 5, 8]),
        rows in 0_usize..13,
        seed in any::<u64>(),
        poison in any::<bool>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((state >> 33) as f64) / ((1_u64 << 31) as f64) - 0.5
        };
        let mut matrix: Vec<f64> = (0..rows * dims).map(|_| next()).collect();
        if poison && !matrix.is_empty() {
            let at = (seed as usize) % matrix.len();
            matrix[at] = f64::NAN;
        }
        let weights: Vec<f64> = (0..dims).map(|_| next()).collect();
        for family in [Kernel::Chunked, Kernel::Scalar] {
            let mut out = Vec::new();
            kernel::dot_rows_into_with(&matrix, dims, &weights, &mut out, family);
            prop_assert_eq!(out.len(), rows);
            for (r, &got) in out.iter().enumerate() {
                let row = &matrix[r * dims..(r + 1) * dims];
                let want = kernel::dot_with(row, &weights, family);
                prop_assert_eq!(got.to_bits(), want.to_bits(), "row {} dims {}", r, dims);
            }
            // The additive twin seeds with the base scores and adds the
            // same per-row dot on top.
            let base: Vec<f64> = (0..rows).map(|_| next()).collect();
            let mut acc = base.clone();
            kernel::add_dot_rows_into_with(&matrix, dims, &weights, &mut acc, family);
            for (r, (&got, &b)) in acc.iter().zip(&base).enumerate() {
                let row = &matrix[r * dims..(r + 1) * dims];
                let want = b + kernel::dot_with(row, &weights, family);
                prop_assert_eq!(got.to_bits(), want.to_bits(), "add row {} dims {}", r, dims);
            }
        }
    }

    /// Column sums: each family follows its documented order exactly — the
    /// scalar family the sequential row fold, the chunked family the
    /// canonical 4-row lanes with the `rows % 4` tail added after the lane
    /// combine — and under four rows the two are the same fold, so they
    /// agree bitwise there. The row-iterator variant (sample views, the
    /// gathered disparity combine) must match the dense sum bit for bit in
    /// both families.
    #[test]
    fn column_sums_follow_their_documented_orders_bitwise(
        dims in pick(&[1, 3, 4, 5, 8]),
        rows in 0_usize..13,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((state >> 33) as f64) / ((1_u64 << 29) as f64) - 4.0
        };
        let matrix: Vec<f64> = (0..rows * dims).map(|_| next()).collect();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let mut chunked = Vec::new();
        kernel::col_sums_into_with(&matrix, dims, &mut chunked, Kernel::Chunked);
        prop_assert_eq!(bits(&chunked), bits(&canonical_col_sums(&matrix, dims)));

        let mut scalar = Vec::new();
        kernel::col_sums_into_with(&matrix, dims, &mut scalar, Kernel::Scalar);
        let mut sequential = vec![0.0_f64; dims];
        for row in matrix.chunks_exact(dims) {
            for (a, v) in sequential.iter_mut().zip(row) {
                *a += v;
            }
        }
        prop_assert_eq!(bits(&scalar), bits(&sequential));
        if rows < 4 {
            prop_assert_eq!(bits(&chunked), bits(&scalar), "under four rows the fold is shared");
        }

        for (family, dense) in [(Kernel::Chunked, &chunked), (Kernel::Scalar, &scalar)] {
            let mut via_rows = Vec::new();
            let n = kernel::col_sums_rows_into_with(
                dims,
                matrix.chunks_exact(dims),
                &mut via_rows,
                family,
            );
            prop_assert_eq!(n, rows);
            prop_assert_eq!(bits(&via_rows), bits(dense));
        }
    }

    /// The gathered Core-DCA scoring kernel (indices into feature/fairness
    /// matrices) equals scoring each gathered row individually, for every
    /// (features, attributes) shape including the non-specialized ones.
    #[test]
    fn gathered_scoring_equals_per_row_scoring_bitwise(
        nf in pick(&[1, 2, 3, 4, 5]),
        na in pick(&[1, 2, 4, 5]),
        rows in 1_usize..40,
        picks in pvec(any::<usize>(), 0..23),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((state >> 33) as f64) / ((1_u64 << 30) as f64) - 2.0
        };
        let features: Vec<f64> = (0..rows * nf).map(|_| next()).collect();
        let fairness: Vec<f64> = (0..rows * na).map(|_| next()).collect();
        let weights: Vec<f64> = (0..nf).map(|_| next()).collect();
        let bonus: Vec<f64> = (0..na).map(|_| next()).collect();
        let indices: Vec<usize> = picks.iter().map(|p| p % rows).collect();
        for family in [Kernel::Chunked, Kernel::Scalar] {
            let mut out = Vec::new();
            kernel::gathered_linear_scores_into_with(
                &features, nf, &weights, &fairness, na, &bonus, &indices, &mut out, family,
            );
            prop_assert_eq!(out.len(), indices.len());
            for (slot, (&got, &i)) in out.iter().zip(&indices).enumerate() {
                let f = kernel::dot_with(&features[i * nf..(i + 1) * nf], &weights, family);
                let a = kernel::dot_with(&fairness[i * na..(i + 1) * na], &bonus, family);
                prop_assert_eq!(
                    got.to_bits(),
                    (f + a).to_bits(),
                    "slot {} nf {} na {}",
                    slot,
                    nf,
                    na
                );
            }
        }
    }
}

/// The `FAIR_KERNEL` dispatch itself: `from_env` maps `scalar` to the
/// reference family and everything else to chunked, and a `force`d mode is
/// what the dispatching entry points use. Process-global, so one test owns
/// the whole story and restores the environment's selection when done.
#[test]
fn env_dispatch_selects_and_forces_both_families() {
    // LCG-drawn operands (seed picked so the two association orders round
    // differently — verified, not assumed, by the assert_ne below).
    let mut state = 5_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f64) / ((1_u64 << 30) as f64) - 2.0
    };
    let a: Vec<f64> = (0..11).map(|_| next()).collect();
    let b: Vec<f64> = (0..11).map(|_| next()).collect();
    let chunked = kernel::dot_with(&a, &b, Kernel::Chunked);
    let scalar = kernel::dot_with(&a, &b, Kernel::Scalar);
    assert_ne!(
        chunked.to_bits(),
        scalar.to_bits(),
        "pick operands where the association is visible, or the test is vacuous"
    );
    kernel::force(Kernel::Scalar);
    assert_eq!(kernel::active(), Kernel::Scalar);
    assert_eq!(kernel::dot(&a, &b).to_bits(), scalar.to_bits());
    kernel::force(Kernel::Chunked);
    assert_eq!(kernel::active(), Kernel::Chunked);
    assert_eq!(kernel::dot(&a, &b).to_bits(), chunked.to_bits());
    // Hand the process back to whatever FAIR_KERNEL says (the CI matrix
    // runs this suite under both settings).
    kernel::force(kernel::from_env());
    match std::env::var("FAIR_KERNEL").ok().as_deref() {
        Some("scalar") => assert_eq!(kernel::from_env(), Kernel::Scalar),
        _ => assert_eq!(kernel::from_env(), Kernel::Chunked),
    }
}
