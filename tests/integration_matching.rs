//! Integration test of the full admissions-match pipeline: DCA bonus points
//! applied inside a deferred-acceptance school-choice market.

use fair_ranking::prelude::*;

#[test]
fn dca_bonus_points_reduce_admitted_disparity_inside_a_stable_match() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(6_000, 21)).generate();
    let dataset = cohort.dataset();
    let rubric = SchoolGenerator::rubric();

    // Bonus points for an unknown selection size.
    let config = DcaConfig {
        sample_size: 300,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 50,
        refinement_iterations: 50,
        rolling_window: 50,
        seed: 3,
        ..DcaConfig::default()
    };
    let dca = Dca::new(config)
        .run(
            dataset,
            &rubric,
            &LogDiscountedObjective::new(LogDiscountConfig {
                step: 10,
                max_fraction: 0.5,
            }),
        )
        .unwrap();

    let simulator = SchoolChoiceSimulator::new(SchoolChoiceConfig {
        num_schools: 6,
        capacity_fraction: 0.2,
        ..SchoolChoiceConfig::default()
    })
    .unwrap();
    let before = simulator.run(dataset, &rubric, None).unwrap();
    let after = simulator.run(dataset, &rubric, Some(&dca.bonus)).unwrap();

    // Every seat is filled in both runs (demand exceeds supply).
    let seats: usize = before.capacities.iter().sum();
    assert_eq!(before.matching.matched_count(), seats);
    assert_eq!(after.matching.matched_count(), seats);

    // The city-wide admitted cohort becomes more representative.
    assert!(
        after.overall_norm() < before.overall_norm(),
        "{} vs {}",
        after.overall_norm(),
        before.overall_norm()
    );

    // Most schools individually improve too (desirable schools reach deepest
    // into their lists, so a uniform bonus cannot fix every school exactly).
    let improved = before
        .per_school_disparity
        .iter()
        .zip(&after.per_school_disparity)
        .filter(|(b, a)| norm(a) <= norm(b) + 1e-9)
        .count();
    assert!(
        improved * 2 >= before.per_school_disparity.len(),
        "at least half the schools improve: {improved}/{}",
        before.per_school_disparity.len()
    );
}

#[test]
fn matching_outcomes_are_reproducible_and_capacity_bounded() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(3_000, 9)).generate();
    let rubric = SchoolGenerator::rubric();
    let simulator = SchoolChoiceSimulator::new(SchoolChoiceConfig::default()).unwrap();
    let a = simulator.run(cohort.dataset(), &rubric, None).unwrap();
    let b = simulator.run(cohort.dataset(), &rubric, None).unwrap();
    assert_eq!(a.matching.assignments(), b.matching.assignments());
    for (school, roster) in a.matching.rosters().iter().enumerate() {
        assert!(roster.len() <= a.capacities[school]);
    }
}
