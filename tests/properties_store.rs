//! Property and acceptance tests for the on-disk shard store (`fair-store`):
//!
//! 1. **Round trip** — `ShardedDataset → StoreWriter → ShardStore` is
//!    bit-for-bit identical per shard (ids, feature/fairness bit patterns,
//!    labels), for shard sizes 1, 7, and the production 64k, including short
//!    final shards.
//! 2. **Evaluation parity** — every sharded metric and a Full-DCA bonus
//!    trajectory computed over the `ShardStore` equals the in-memory
//!    `ShardedDataset` result bit for bit, which in turn equals the serial
//!    single-`Dataset` path (dyadic-grid data, see `properties_shard.rs`).
//! 3. **Corruption** — wrong magic, truncated directories, and flipped data
//!    bytes are structured errors, never panics and never mis-decodes.
//! 4. **Bounded memory (acceptance)** — evaluating a cohort through a cache
//!    budget smaller than its column data keeps the cache's peak resident
//!    bytes under the budget, while still reproducing the in-memory results
//!    exactly.

use fair_ranking::core::metrics::sharded as shmetrics;
use fair_ranking::prelude::*;
use fair_ranking::store::column_bytes;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Shard sizes the checklist calls out: degenerate (1), a small prime that
/// rarely divides the cohort (7), and the production default.
const SHARD_SIZES: [usize; 3] = [1, 7, 64 * 1024];

/// One generated row: score numerator, binary group flag, continuous-need
/// numerator, outcome label — everything on dyadic grids so every combine is
/// exact and "bit-for-bit" is meaningful.
type Row = (u32, bool, u16, bool);

fn dataset_from_rows(rows: &[Row]) -> Dataset {
    let schema = Schema::from_names(&["score"], &["grp", "need"], &[]).unwrap();
    let objects: Vec<DataObject> = rows
        .iter()
        .enumerate()
        .map(|(i, &(score, member, need, label))| {
            DataObject::new_unchecked(
                i as u64,
                vec![f64::from(score) / 64.0],
                vec![f64::from(u8::from(member)), f64::from(need) / 256.0],
                Some(label),
            )
        })
        .collect();
    Dataset::new(schema, objects).unwrap()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn row_strategy() -> impl Strategy<Value = Vec<Row>> {
    pvec(
        (0_u32..8192, any::<bool>(), 0_u16..257, any::<bool>()),
        8..120,
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fair_store_property_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.fss", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing a sharded cohort to disk and paging it back reproduces every
    /// shard bit for bit, at every shard size (short final shards included).
    #[test]
    fn store_round_trip_is_bit_identical(rows in row_strategy()) {
        let flat = dataset_from_rows(&rows);
        let path = temp_path("round_trip");
        for shard_size in SHARD_SIZES {
            let mem = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let summary = write_source(&mem, &path).unwrap();
            prop_assert_eq!(summary.rows, rows.len() as u64);
            prop_assert_eq!(summary.shards, mem.num_shards() as u64);

            let store = ShardStore::open_with_budget(&path, usize::MAX).unwrap();
            prop_assert_eq!(store.len(), mem.len());
            prop_assert_eq!(store.shard_size(), shard_size);
            prop_assert_eq!(store.num_shards(), mem.num_shards());
            for i in 0..mem.num_shards() {
                let disk = store.read_shard(i).unwrap();
                let shard = mem.shard(i);
                prop_assert_eq!(disk.len(), shard.len(), "shard {} rows", i);
                prop_assert_eq!(disk.ids(), shard.data().ids(), "shard {} ids", i);
                prop_assert_eq!(disk.labels(), shard.data().labels(), "shard {} labels", i);
                prop_assert_eq!(
                    bits(disk.features_matrix()),
                    bits(shard.data().features_matrix()),
                    "shard {} features", i
                );
                prop_assert_eq!(
                    bits(disk.fairness_matrix()),
                    bits(shard.data().fairness_matrix()),
                    "shard {} fairness", i
                );
            }
        }
        std::fs::remove_file(path).ok();
    }

    /// Every sharded metric — and a Full-DCA bonus trajectory — evaluated
    /// over the on-disk store equals the in-memory sharded path bit for bit,
    /// which equals the serial path (`ShardStore == ShardedDataset ==
    /// serial`).
    #[test]
    fn store_evaluation_matches_memory_and_serial(
        rows in row_strategy(),
        k in 0.02_f64..1.0,
    ) {
        let flat = dataset_from_rows(&rows);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = [2.5_f64, 0.25];
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &bonus));
        let log_cfg = LogDiscountConfig { step: 5, max_fraction: 0.5 };

        let serial_disp = disparity_at_k(&view, &ranking, k).unwrap();
        let serial_ndcg = ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
        let serial_log = log_discounted_disparity(&view, &ranking, &log_cfg).unwrap();
        let serial_fpr = fpr_difference_at_k(&view, &ranking, k).unwrap();
        let serial_di =
            fair_ranking::core::metrics::scaled_disparate_impact_at_k(&view, &ranking, k).unwrap();

        let path = temp_path("parity");
        let mem = ShardedDataset::from_dataset(&flat, 7).unwrap();
        write_source(&mem, &path).unwrap();
        // A budget of two shards forces steady paging during evaluation.
        let two_shards = 2 * column_bytes(mem.shard(0).data());
        let store = ShardStore::open_with_budget(&path, two_shards).unwrap();

        let mem_disp = shmetrics::disparity_at_k(&mem, &ranker, &bonus, k).unwrap();
        let store_disp = shmetrics::disparity_at_k(&store, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(&bits(&serial_disp), &bits(&mem_disp), "serial vs memory");
        prop_assert_eq!(&bits(&mem_disp), &bits(&store_disp), "memory vs store");

        let mem_ndcg = shmetrics::ndcg_at_k(&mem, &ranker, &bonus, k).unwrap();
        let store_ndcg = shmetrics::ndcg_at_k(&store, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(serial_ndcg.to_bits(), mem_ndcg.to_bits());
        prop_assert_eq!(mem_ndcg.to_bits(), store_ndcg.to_bits());

        let mem_log = shmetrics::log_discounted_disparity(&mem, &ranker, &bonus, &log_cfg).unwrap();
        let store_log =
            shmetrics::log_discounted_disparity(&store, &ranker, &bonus, &log_cfg).unwrap();
        prop_assert_eq!(&bits(&serial_log), &bits(&mem_log));
        prop_assert_eq!(&bits(&mem_log), &bits(&store_log));

        let mem_fpr = shmetrics::fpr_difference_at_k(&mem, &ranker, &bonus, k).unwrap();
        let store_fpr = shmetrics::fpr_difference_at_k(&store, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(&bits(&serial_fpr), &bits(&mem_fpr));
        prop_assert_eq!(&bits(&mem_fpr), &bits(&store_fpr));

        let mem_di = shmetrics::scaled_disparate_impact_at_k(&mem, &ranker, &bonus, k).unwrap();
        let store_di = shmetrics::scaled_disparate_impact_at_k(&store, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(&bits(&serial_di), &bits(&mem_di));
        prop_assert_eq!(&bits(&mem_di), &bits(&store_di));

        // Full DCA: the whole bonus trajectory must agree across all three.
        let objective = TopKDisparity::new(k.clamp(0.05, 0.6));
        let config = DcaConfig {
            learning_rates: vec![8.0, 0.5],
            iterations_per_rate: 3,
            refinement_iterations: 0,
            ..DcaConfig::default()
        };
        let serial_dca = run_full_dca(&flat, &ranker, &objective, &config, None, true).unwrap();
        let mem_dca = run_full_dca_sharded(&mem, &ranker, &objective, &config, None, true).unwrap();
        let store_dca =
            run_full_dca_sharded(&store, &ranker, &objective, &config, None, true).unwrap();
        prop_assert_eq!(&bits(&serial_dca.bonus), &bits(&mem_dca.bonus));
        prop_assert_eq!(&bits(&mem_dca.bonus), &bits(&store_dca.bonus));
        prop_assert_eq!(mem_dca.steps, store_dca.steps);
        for (m, s) in mem_dca.trace.iter().zip(&store_dca.trace) {
            prop_assert_eq!(&bits(&m.bonus), &bits(&s.bonus), "trace step {}", m.step);
        }

        // Core DCA with per-shard sampling draws the same seed-split streams
        // regardless of the storage backend.
        let core_cfg = DcaConfig {
            sample_size: 30,
            learning_rates: vec![4.0],
            iterations_per_rate: 3,
            refinement_iterations: 0,
            seed: 11,
            ..DcaConfig::default()
        };
        let mem_core =
            run_core_dca_sharded(&mem, &ranker, &objective, &core_cfg, None, false).unwrap();
        let store_core =
            run_core_dca_sharded(&store, &ranker, &objective, &core_cfg, None, false).unwrap();
        prop_assert_eq!(&bits(&mem_core.bonus), &bits(&store_core.bonus));
        std::fs::remove_file(path).ok();
    }
}

/// The acceptance criterion: a cohort whose column data exceeds the cache
/// budget evaluates every sharded metric and a Full-DCA trajectory
/// identically to the in-memory path while the cache's peak resident bytes
/// stay under `FAIR_CACHE_BYTES` (here set programmatically, so the test is
/// immune to the environment).
#[test]
fn paged_evaluation_stays_under_the_cache_budget() {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let shard_size = 64_usize;
    let num_shards = (8 * workers).max(64);
    let n = shard_size * num_shards;
    let rows: Vec<Row> = (0..n as u32)
        .map(|i| {
            (
                (i * 517) % 8192,
                i % 3 == 0,
                ((i * 97) % 257) as u16,
                i % 2 == 0,
            )
        })
        .collect();
    let flat = dataset_from_rows(&rows);
    let mem = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
    let path = temp_path("budget");
    write_source(&mem, &path).unwrap();

    let shard_bytes = column_bytes(mem.shard(0).data());
    let total_bytes = num_shards * shard_bytes;
    // Big enough that the parallel workers' pinned working set fits, small
    // enough that the cohort cannot be resident all at once.
    let budget = (4 * workers * shard_bytes).max(8 * shard_bytes);
    assert!(
        budget < total_bytes,
        "test setup: budget {budget} must be smaller than the cohort's {total_bytes} column bytes"
    );
    let store = ShardStore::open_with_budget(&path, budget).unwrap();

    let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
    let bonus = [2.5_f64, 0.25];
    let k = 0.05;
    let log_cfg = LogDiscountConfig {
        step: 50,
        max_fraction: 0.5,
    };

    let mem_disp = shmetrics::disparity_at_k(&mem, &ranker, &bonus, k).unwrap();
    let store_disp = shmetrics::disparity_at_k(&store, &ranker, &bonus, k).unwrap();
    assert_eq!(bits(&mem_disp), bits(&store_disp), "disparity parity");
    assert_eq!(
        shmetrics::ndcg_at_k(&mem, &ranker, &bonus, k)
            .unwrap()
            .to_bits(),
        shmetrics::ndcg_at_k(&store, &ranker, &bonus, k)
            .unwrap()
            .to_bits(),
        "ndcg parity"
    );
    assert_eq!(
        bits(&shmetrics::log_discounted_disparity(&mem, &ranker, &bonus, &log_cfg).unwrap()),
        bits(&shmetrics::log_discounted_disparity(&store, &ranker, &bonus, &log_cfg).unwrap()),
        "log-discounted parity"
    );
    assert_eq!(
        bits(&shmetrics::fpr_difference_at_k(&mem, &ranker, &bonus, k).unwrap()),
        bits(&shmetrics::fpr_difference_at_k(&store, &ranker, &bonus, k).unwrap()),
        "fpr parity"
    );

    let objective = TopKDisparity::new(k);
    let config = DcaConfig {
        learning_rates: vec![8.0, 0.5],
        iterations_per_rate: 3,
        refinement_iterations: 0,
        ..DcaConfig::default()
    };
    let mem_dca = run_full_dca_sharded(&mem, &ranker, &objective, &config, None, true).unwrap();
    let store_dca = run_full_dca_sharded(&store, &ranker, &objective, &config, None, true).unwrap();
    assert_eq!(bits(&mem_dca.bonus), bits(&store_dca.bonus), "DCA parity");
    for (m, s) in mem_dca.trace.iter().zip(&store_dca.trace) {
        assert_eq!(bits(&m.bonus), bits(&s.bonus), "DCA trace step {}", m.step);
    }

    let stats = store.cache_stats();
    assert!(
        stats.peak_bytes <= budget,
        "peak resident bytes {} must stay under the budget {} \
         (shard {} B, {} shards, {} workers)",
        stats.peak_bytes,
        budget,
        shard_bytes,
        num_shards,
        workers
    );
    assert!(
        stats.misses >= num_shards as u64,
        "every shard must have been paged in at least once ({} misses)",
        stats.misses
    );
    assert!(
        stats.evictions > 0,
        "a budget below the cohort size must evict ({stats:?})"
    );
    assert_eq!(stats.budget_bytes, budget);
    assert_eq!(stats.pinned_shards, 0, "no pins survive the kernels");
    assert!(stats.resident_bytes <= budget);
    std::fs::remove_file(path).ok();
}

/// Concurrency regression for the serving layer: N request threads hammer
/// *one* shared `ShardStore` handle in different shard orders while the
/// budget forces continuous eviction. Every thread must observe every shard
/// bit-identical to the in-memory (serial) reference — a stale or
/// mid-eviction read would corrupt the comparison — and the pin-while-
/// borrowed accounting must keep `peak_bytes <= budget` even with all
/// threads pinning simultaneously.
#[test]
fn concurrent_paged_reads_are_bit_identical_and_stay_under_budget() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    let shard_size = 32_usize;
    let num_shards = 40_usize;
    let n = shard_size * num_shards;
    let rows: Vec<Row> = (0..n as u32)
        .map(|i| {
            (
                (i * 811) % 8192,
                i % 5 == 0,
                ((i * 31) % 257) as u16,
                i % 2 == 1,
            )
        })
        .collect();
    let flat = dataset_from_rows(&rows);
    let mem = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
    let path = temp_path("concurrent");
    write_source(&mem, &path).unwrap();

    let shard_bytes = column_bytes(mem.shard(0).data());
    // Room for each thread's pinned shard plus one, far below the cohort —
    // every round of the hammer loop below must evict.
    let budget = (THREADS + 1) * shard_bytes;
    assert!(
        budget < num_shards * shard_bytes,
        "budget must force paging"
    );
    let store = std::sync::Arc::new(ShardStore::open_with_budget(&path, budget).unwrap());

    // Serial reference: per-shard bit patterns off the in-memory source.
    let reference: Vec<(Vec<u64>, Vec<u64>, u64)> = (0..num_shards)
        .map(|i| {
            let d = mem.shard(i).data();
            (
                bits(d.features_matrix()),
                bits(d.fairness_matrix()),
                d.ids().iter().map(|id| id.0).sum::<u64>(),
            )
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            let reference = &reference;
            scope.spawn(move || {
                // Each thread walks the shards with a different coprime
                // stride, so at any instant the threads are pinning
                // different shards and evicting each other's.
                let stride = [1, 3, 7, 9, 11, 13, 17, 19][t];
                for round in 0..ROUNDS {
                    for j in 0..num_shards {
                        let i = (j * stride + round + t) % num_shards;
                        store.with_shard(i, |view| {
                            let d = view.data();
                            let (ref f, ref a, id_sum) = reference[i];
                            assert_eq!(&bits(d.features_matrix()), f, "shard {i} features");
                            assert_eq!(&bits(d.fairness_matrix()), a, "shard {i} fairness");
                            assert_eq!(
                                d.ids().iter().map(|id| id.0).sum::<u64>(),
                                id_sum,
                                "shard {i} ids"
                            );
                        });
                    }
                }
            });
        }
    });

    let stats = store.cache_stats();
    assert!(
        stats.peak_bytes <= budget,
        "concurrent pinning must never push the peak {} over the budget {budget}",
        stats.peak_bytes
    );
    assert!(
        stats.evictions > 0,
        "the hammer loop must continuously evict ({stats:?})"
    );
    assert!(
        stats.misses >= num_shards as u64,
        "every shard pages in at least once"
    );
    assert_eq!(stats.pinned_shards, 0, "no pins survive the threads");
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * ROUNDS * num_shards) as u64,
        "every access is either a hit or a miss"
    );
    std::fs::remove_file(path).ok();
}

/// Corrupted files must surface as structured `StoreError`s through the
/// public API — never a panic, never a silently wrong decode.
#[test]
fn corrupted_files_yield_structured_errors() {
    let flat = dataset_from_rows(
        &(0..40_u32)
            .map(|i| ((i * 31) % 8192, i % 2 == 0, (i % 257) as u16, i % 3 == 0))
            .collect::<Vec<Row>>(),
    );
    let mem = ShardedDataset::from_dataset(&flat, 8).unwrap();
    let path = temp_path("corrupt");
    write_source(&mem, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Wrong magic.
    let mut bad = pristine.clone();
    bad[..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &bad).unwrap();
    match ShardStore::open_with_budget(&path, 0) {
        Err(StoreError::Corrupt { what, reason, .. }) => {
            assert!(what.contains("header"), "{what}: {reason}");
        }
        other => panic!("wrong magic must be corrupt, got {other:?}"),
    }

    // Truncated directory: chop the tail off.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).unwrap();
    match ShardStore::open_with_budget(&path, 0) {
        Err(StoreError::Corrupt { what, .. }) => {
            assert!(what.contains("directory"), "{what}");
        }
        other => panic!("truncated directory must be corrupt, got {other:?}"),
    }

    // A flipped byte in every single data position must never mis-decode:
    // each position either fails a checksum (structured error) or — for
    // bytes in CRC fields themselves — fails that block's verification.
    // Exhaustively flipping every byte is slow, so stride through the file.
    for flip in (60..pristine.len().saturating_sub(150)).step_by(131) {
        let mut bad = pristine.clone();
        bad[flip] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();
        match ShardStore::open_with_budget(&path, 0) {
            // Header/schema/directory corruption: rejected at open.
            Err(e) => {
                assert!(
                    matches!(e, StoreError::Corrupt { .. }),
                    "flip at {flip}: {e}"
                );
            }
            // Shard-block corruption: rejected at page-in by verify().
            Ok(store) => {
                let err = store
                    .verify()
                    .expect_err(&format!("flip at byte {flip} must fail verification"));
                assert!(
                    matches!(err, StoreError::Corrupt { .. }),
                    "flip at {flip}: {err}"
                );
            }
        }
    }

    // The pristine bytes still open and verify cleanly.
    std::fs::write(&path, &pristine).unwrap();
    let store = ShardStore::open_with_budget(&path, 0).unwrap();
    store.verify().unwrap();
    std::fs::remove_file(path).ok();
}

/// Zero shard sizes are structured errors at every layer (regression for the
/// satellite fix: no panics).
#[test]
fn zero_shard_size_is_rejected_everywhere() {
    let flat = dataset_from_rows(&[(1, true, 3, false), (2, false, 5, true)]);
    assert!(matches!(
        ShardedDataset::from_dataset(&flat, 0),
        Err(FairError::InvalidConfig { .. })
    ));
    assert!(matches!(
        ShardedDataset::with_shard_size(flat.schema().clone(), 0),
        Err(FairError::InvalidConfig { .. })
    ));
    assert!(matches!(
        StoreWriter::create(temp_path("zero"), flat.schema().clone(), 0),
        Err(StoreError::InvalidConfig { .. })
    ));
    let generator = SchoolGenerator::new(SchoolConfig::small(10, 1));
    assert!(generator.generate_sharded(0).is_err());
    let compas = CompasGenerator::new(CompasConfig::small(10, 1));
    assert!(compas.generate_sharded(0).is_err());
}
