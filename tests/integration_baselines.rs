//! Cross-crate integration tests pitting DCA against the baseline
//! interventions on a shared synthetic cohort (the Section VI-C comparisons).

use fair_ranking::prelude::*;

fn cohort() -> fair_ranking::core::Dataset {
    SchoolGenerator::new(SchoolConfig::small(6_000, 77))
        .generate()
        .into_dataset()
}

fn dca_config() -> DcaConfig {
    DcaConfig {
        sample_size: 300,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 50,
        refinement_iterations: 50,
        rolling_window: 50,
        seed: 13,
        ..DcaConfig::default()
    }
}

fn selection_disparity(dataset: &Dataset, selected: &[usize]) -> f64 {
    let view = dataset.full_view();
    norm(&fair_ranking::core::metrics::disparity_of_selection(&view, selected).unwrap())
}

#[test]
fn dca_beats_a_single_quota_on_multidimensional_disparity() {
    let dataset = cohort();
    let rubric = SchoolGenerator::rubric();
    let k = 0.1;
    let view = dataset.full_view();

    // Quota: 70% of seats reserved for students in any binary protected group.
    let quota = QuotaConfig::new(0.7, vec![0, 1, 2]).unwrap();
    let quota_selected = quota_select(&view, &rubric, k, &quota).unwrap();
    let quota_norm = selection_disparity(&dataset, &quota_selected);

    // DCA.
    let dca = Dca::new(dca_config())
        .run(&dataset, &rubric, &TopKDisparity::new(k))
        .unwrap();
    let ranking =
        RankedSelection::from_scores(effective_scores(&view, &rubric, dca.bonus.values()));
    let dca_norm = norm(&disparity_at_k(&view, &ranking, k).unwrap());

    // Baseline for context.
    let base_ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let base_norm = norm(&disparity_at_k(&view, &base_ranking, k).unwrap());

    assert!(
        quota_norm < base_norm,
        "the quota does help: {quota_norm} vs {base_norm}"
    );
    assert!(
        dca_norm < quota_norm,
        "DCA should beat the single quota: {dca_norm} vs {quota_norm}"
    );
}

#[test]
fn delta2_with_dca_derived_constraints_matches_dca_quality() {
    let dataset = cohort();
    let rubric = SchoolGenerator::rubric();
    let k = 0.05;
    let view = dataset.full_view();
    let m = selection_size(dataset.len(), k).unwrap();

    let dca = Dca::new(dca_config())
        .run(&dataset, &rubric, &TopKDisparity::new(k))
        .unwrap();
    let ranking =
        RankedSelection::from_scores(effective_scores(&view, &rubric, dca.bonus.values()));
    let dca_norm = norm(&disparity_at_k(&view, &ranking, k).unwrap());

    let constraints = caps_excluding_group(&view, &[0, 1, 2], m, dca_norm).unwrap();
    let selected = celis_rerank(&view, &rubric, m, &constraints).unwrap();
    let delta2_norm = selection_disparity(&dataset, &selected);

    let base_ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let base_norm = norm(&disparity_at_k(&view, &base_ranking, k).unwrap());
    assert!(dca_norm < base_norm * 0.6);
    assert!(delta2_norm < base_norm, "(Δ+2) improves over the baseline");
    // The two post-hoc methods land in the same quality neighbourhood.
    assert!(
        (delta2_norm - dca_norm).abs() < 0.25,
        "{delta2_norm} vs {dca_norm}"
    );
}

#[test]
fn fastar_respects_its_mtables_on_a_district_sized_population() {
    let dataset = SchoolGenerator::new(SchoolConfig::small(2_500, 5))
        .generate()
        .into_dataset();
    let rubric = SchoolGenerator::rubric();
    let view = dataset.full_view();
    let k = 0.1;
    let m = selection_size(dataset.len(), k).unwrap();

    let worst = most_disadvantaged_subgroups(&view, &rubric, &[0, 1, 2], k, 3).unwrap();
    let groups: Vec<ProtectedGroup> = worst
        .iter()
        .map(|(g, _)| ProtectedGroup::from_subgroup(&view, g))
        .collect();
    let shares: Vec<f64> = groups.iter().map(|g| g.target_proportion).collect();
    let ranker = FaStarRanker::new(FaStarConfig::new(0.1, m).unwrap(), groups).unwrap();
    let order = ranker.rerank(&view, &rubric).unwrap();
    assert_eq!(order.len(), m);

    // Verify the ranked-group-fairness condition prefix by prefix with an
    // independently computed mtable (Šidák-corrected significance). Because
    // only one candidate can be inserted per position, requirements of
    // several groups binding at the same prefix can lag by at most
    // |groups| - 1 positions; the condition must hold exactly at the end.
    let alpha_c = 1.0 - (1.0_f64 - 0.1).powf(1.0 / shares.len() as f64);
    let slack = shares.len() - 1;
    for (g, share) in shares.iter().enumerate() {
        let mtable = binomial_mtable(m, *share, alpha_c);
        let mut count = 0usize;
        for (i, &pos) in order.iter().enumerate() {
            if ranker.groups()[g].members[pos] {
                count += 1;
            }
            assert!(
                count + slack >= mtable[i],
                "group {g} prefix {i}: {count} (+{slack} slack) < {}",
                mtable[i]
            );
        }
        let final_count = order
            .iter()
            .filter(|&&pos| ranker.groups()[g].members[pos])
            .count();
        assert!(
            final_count >= mtable[m - 1],
            "group {g} final count {final_count} < {}",
            mtable[m - 1]
        );
    }
}

#[test]
fn exposure_ddp_improves_after_dca() {
    let dataset = cohort();
    let rubric = SchoolGenerator::rubric();
    let view = dataset.full_view();
    let dca = Dca::new(dca_config())
        .run(
            &dataset,
            &rubric,
            &LogDiscountedObjective::new(LogDiscountConfig {
                step: 10,
                max_fraction: 0.5,
            }),
        )
        .unwrap();
    let before = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let after = RankedSelection::from_scores(effective_scores(&view, &rubric, dca.bonus.values()));
    let ddp_before = ddp_for_binary_attributes(&view, &before).unwrap();
    let ddp_after = ddp_for_binary_attributes(&view, &after).unwrap();
    assert!(ddp_after < ddp_before, "{ddp_after} vs {ddp_before}");
}
