//! Property-based tests (proptest) for the observability layer's histogram
//! reservoir: below [`RESERVOIR_SLOTS`] observations the quantiles are
//! *exact* against a sorted oracle; above it the `_sum`/`_count` pair stays
//! exact, every reported quantile is a value that was genuinely observed,
//! and the estimate is monotone in `q`. A pinned deterministic case bounds
//! the rank error of the over-capacity estimate.

use fair_ranking::core::obs::{bucket_index, Histogram, HISTOGRAM_BUCKETS, RESERVOIR_SLOTS};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// The oracle: rank `⌈q·n⌉` (1-based, clamped) of the sorted data.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// While the reservoir is not yet full it holds every observation, so
    /// any quantile must equal the sorted oracle exactly — independent of
    /// arrival order, duplicates, or value magnitude.
    #[test]
    fn quantiles_are_exact_up_to_reservoir_capacity(
        values in pvec(any::<u64>(), 1..RESERVOIR_SLOTS + 1),
        qs in pvec(0.0001_f64..1.0, 1..8),
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().copied().map(u128::from).sum::<u128>() as u64);
        for &q in qs.iter().chain(&[0.5, 0.9, 0.99, 1.0]) {
            prop_assert_eq!(
                h.quantile(q),
                Some(oracle_quantile(&sorted, q)),
                "q={} over {} values", q, values.len()
            );
        }
    }

    /// Past capacity the reservoir degrades to a sample, but three things
    /// must never degrade: the exact `_sum`/`_count` pair, the guarantee
    /// that a quantile is an actually observed value (never a bucket
    /// ceiling or an interpolation), and monotonicity in `q`.
    #[test]
    fn over_capacity_keeps_sum_count_exact_and_quantiles_observed(
        values in pvec(any::<u64>(), RESERVOIR_SLOTS + 1..RESERVOIR_SLOTS * 3),
        qs in pvec(0.0001_f64..1.0, 2..8),
    ) {
        let h = Histogram::default();
        let mut exact_sum = 0u64;
        for &v in &values {
            h.record(v);
            exact_sum = exact_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), exact_sum, "u64-wrapping sum stays exact");

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut last = None;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(
                values.contains(&v),
                "quantile {} is not an observed value", v
            );
            prop_assert!((min..=max).contains(&v));
            if let Some(prev) = last {
                prop_assert!(v >= prev, "quantiles must be monotone in q");
            }
            last = Some(v);
        }
    }

    /// Bucket counts always agree with `bucket_index` re-derived from the
    /// raw observations, whatever the reservoir does.
    #[test]
    fn buckets_partition_the_observations(
        values in pvec(any::<u64>(), 1..800),
    ) {
        let h = Histogram::default();
        let mut expected = [0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            h.record(v);
            expected[bucket_index(v)] += 1;
        }
        prop_assert_eq!(h.snapshot(), expected);
        prop_assert_eq!(expected.iter().sum::<u64>(), h.count());
    }
}

/// The over-capacity estimate's *rank error* on a pinned deterministic
/// stream: 4x capacity of distinct values arriving in a scrambled order.
/// The splitmix64 replacement coin is deterministic, so this bound can
/// never flake — it pins the sampling quality, not luck.
#[test]
fn over_capacity_rank_error_is_bounded_on_a_pinned_stream() {
    const N: u64 = 4 * RESERVOIR_SLOTS as u64;
    let h = Histogram::default();
    // Deterministic scramble: an odd multiplier modulo the power-of-two N
    // is a bijection on 0..N, so every value arrives exactly once and value
    // `v`'s true 1-based rank is `v + 1`.
    for i in 0..N {
        h.record(i.wrapping_mul(2_654_435_761) % N);
    }
    assert_eq!(h.count(), N);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let est = h.quantile(q).unwrap();
        let true_rank = (q * N as f64).ceil();
        let err = (est as f64 - true_rank).abs() / N as f64;
        assert!(
            err <= 0.10,
            "q={q}: estimated rank {est} vs true {true_rank} (err {err:.3})"
        );
    }
}
