//! Property tests guarding the data-plane performance work: the partial
//! top-k selection fast path must be indistinguishable from the full sort,
//! and the columnar (structure-of-arrays) dataset must reproduce the
//! pre-refactor array-of-structs arithmetic bit-for-bit.

use fair_ranking::prelude::*;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `from_scores_topk` must select exactly what the full sort selects —
    /// same positions, same order, same mask, same threshold — for random
    /// continuous scores and any selection fraction.
    #[test]
    fn partial_topk_selection_matches_full_sort(
        scores in pvec(-1.0e3_f64..1.0e3, 1..400),
        k in 0.005_f64..1.0,
    ) {
        let m = selection_size(scores.len(), k).unwrap();
        let full = RankedSelection::from_scores(scores.clone());
        let partial = RankedSelection::from_scores_topk(scores, m);
        prop_assert_eq!(partial.selected(k).unwrap(), full.selected(k).unwrap());
        prop_assert_eq!(
            partial.selection_mask(k).unwrap(),
            full.selection_mask(k).unwrap()
        );
        prop_assert_eq!(
            partial.threshold_score(k).unwrap(),
            full.threshold_score(k).unwrap()
        );
    }

    /// Heavily tied scores exercise the deterministic position tie-break:
    /// the partial partition must cut the tie group at exactly the same
    /// positions as the full sort.
    #[test]
    fn partial_topk_breaks_ties_like_the_full_sort(
        raw in pvec(0_u8..4, 2..300),
        k in 0.005_f64..1.0,
    ) {
        let scores: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        let m = selection_size(scores.len(), k).unwrap();
        let full = RankedSelection::from_scores(scores.clone());
        let partial = RankedSelection::from_scores_topk(scores, m);
        prop_assert_eq!(partial.selected(k).unwrap(), full.selected(k).unwrap());
        prop_assert_eq!(partial.top(m), full.top(m));
    }

    /// The columnar dataset must reproduce the array-of-structs arithmetic
    /// bit-for-bit: centroids, effective scores, and the disparity metric all
    /// accumulate in the same order over the same values, so converting the
    /// storage layout must not move a single ulp.
    #[test]
    fn columnar_dataset_matches_aos_reference_bit_for_bit(
        rows in pvec((0.0_f64..100.0, any::<bool>(), 0.0_f64..1.0), 1..250),
        k in 0.01_f64..1.0,
    ) {
        let schema = Schema::from_names(&["score"], &["grp"], &["need"]).unwrap();
        let objects: Vec<DataObject> = rows
            .iter()
            .enumerate()
            .map(|(i, &(score, member, need))| {
                DataObject::new_unchecked(
                    i as u64,
                    vec![score],
                    vec![f64::from(u8::from(member)), need],
                    None,
                )
            })
            .collect();
        let bonus = [2.5_f64, 7.25];
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();

        // Array-of-structs reference: row-iterated accumulation over the
        // owned objects, in the canonical kernel order the columnar store
        // also uses (see `fair_core::kernel`).
        let mut acc = Vec::new();
        fair_ranking::core::kernel::col_sums_rows_into(
            2,
            objects.iter().map(|o| o.fairness()),
            &mut acc,
        );
        for a in &mut acc {
            *a /= objects.len() as f64;
        }
        let aos_scores: Vec<f64> = objects
            .iter()
            .map(|o| ranker.base_score(o.as_view()) + o.bonus_increment(&bonus))
            .collect();

        // Columnar dataset under test.
        let dataset = Dataset::new(schema, objects).unwrap();
        let centroid = dataset.fairness_centroid().unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&centroid), bits(&acc));

        let view = dataset.full_view();
        let soa_scores = effective_scores(&view, &ranker, &bonus);
        prop_assert_eq!(bits(&soa_scores), bits(&aos_scores));

        // Disparity over the AoS-scored ranking vs the SoA-scored ranking:
        // identical scores and identical centroid accumulation order mean
        // identical disparity bits.
        let aos_ranking = RankedSelection::from_scores(aos_scores);
        let soa_ranking = RankedSelection::from_scores(soa_scores);
        let aos_disp = disparity_at_k(&view, &aos_ranking, k).unwrap();
        let soa_disp = disparity_at_k(&view, &soa_ranking, k).unwrap();
        prop_assert_eq!(bits(&soa_disp), bits(&aos_disp));
    }

    /// Row views must round-trip through the column store losslessly.
    #[test]
    fn row_views_round_trip_through_columnar_storage(
        rows in pvec((0.0_f64..100.0, any::<bool>(), any::<bool>()), 1..120),
    ) {
        let schema = Schema::from_names(&["a", "b"], &["g"], &[]).unwrap();
        let objects: Vec<DataObject> = rows
            .iter()
            .enumerate()
            .map(|(i, &(x, member, label))| {
                DataObject::new_unchecked(
                    i as u64,
                    vec![x, 100.0 - x],
                    vec![f64::from(u8::from(member))],
                    Some(label),
                )
            })
            .collect();
        let dataset = Dataset::new(schema, objects.clone()).unwrap();
        prop_assert_eq!(dataset.len(), objects.len());
        for (i, original) in objects.iter().enumerate() {
            let row = dataset.row(i);
            prop_assert_eq!(row, original.as_view());
            prop_assert_eq!(&row.to_object(), original);
        }
    }
}
