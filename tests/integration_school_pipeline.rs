//! End-to-end integration test of the school-admission pipeline: generator →
//! rubric → DCA → evaluation on a held-out cohort, exercising the same path as
//! Table I of the paper.

use fair_ranking::prelude::*;

fn fast_config() -> DcaConfig {
    DcaConfig {
        sample_size: 300,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: 50,
        refinement_iterations: 50,
        rolling_window: 50,
        seed: 99,
        ..DcaConfig::default()
    }
}

#[test]
fn table_one_pipeline_generalizes_to_the_test_year() {
    let (train, test) = SchoolGenerator::new(SchoolConfig::small(6_000, 2016)).train_test_cohorts();
    let rubric = SchoolGenerator::rubric();
    let k = 0.05;

    let result = Dca::new(fast_config())
        .run(train.dataset(), &rubric, &TopKDisparity::new(k))
        .expect("DCA run");

    // Training-year improvement.
    let before = result.report.disparity_before.norm();
    let after = result.report.disparity_after.norm();
    assert!(before > 0.15, "baseline norm {before}");
    assert!(after < before * 0.5, "training norm {after} vs {before}");

    // Test-year improvement with the same published bonus vector.
    let view = test.dataset().full_view();
    let corrected =
        RankedSelection::from_scores(effective_scores(&view, &rubric, result.bonus.values()));
    let uncorrected = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
    let test_before = norm(&disparity_at_k(&view, &uncorrected, k).unwrap());
    let test_after = norm(&disparity_at_k(&view, &corrected, k).unwrap());
    assert!(
        test_after < test_before * 0.6,
        "test norm {test_after} vs {test_before}"
    );

    // Utility stays high (paper: ≈ 0.957 at 5%).
    let utility = ndcg_at_k(&view, &rubric, &corrected, k).unwrap();
    assert!(utility > 0.85, "nDCG {utility}");

    // The published vector is explainable: non-negative, 0.5-point grid, and
    // the explanation names every fairness attribute.
    for v in result.bonus.values() {
        assert!(*v >= 0.0);
        assert!(((v / 0.5) - (v / 0.5).round()).abs() < 1e-9);
    }
    let explanation = result.bonus.explain();
    for name in train.dataset().schema().fairness_names() {
        assert!(explanation.contains(name), "explanation missing {name}");
    }
}

#[test]
fn log_discounted_mode_handles_unknown_selection_sizes() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(6_000, 7)).generate();
    let rubric = SchoolGenerator::rubric();
    let result = Dca::new(fast_config())
        .run(
            cohort.dataset(),
            &rubric,
            &LogDiscountedObjective::new(LogDiscountConfig {
                step: 10,
                max_fraction: 0.5,
            }),
        )
        .expect("log-discounted DCA run");

    // One bonus vector must improve the average disparity across many k.
    let view = cohort.dataset().full_view();
    let ks: Vec<f64> = (1..=10).map(|i| i as f64 * 0.05).collect();
    let avg = |bonus: &[f64]| -> f64 {
        let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, bonus));
        ks.iter()
            .map(|&k| norm(&disparity_at_k(&view, &ranking, k).unwrap()))
            .sum::<f64>()
            / ks.len() as f64
    };
    let before = avg(&[0.0; 4]);
    let after = avg(result.bonus.values());
    assert!(after < before * 0.6, "average norm {after} vs {before}");
}

#[test]
fn scaled_interventions_trade_fairness_for_utility() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(6_000, 11)).generate();
    let rubric = SchoolGenerator::rubric();
    let k = 0.05;
    let result = Dca::new(fast_config())
        .run(cohort.dataset(), &rubric, &TopKDisparity::new(k))
        .expect("DCA run");

    let view = cohort.dataset().full_view();
    let evaluate = |bonus: &BonusVector| {
        let ranking =
            RankedSelection::from_scores(effective_scores(&view, &rubric, bonus.values()));
        let disparity = norm(&disparity_at_k(&view, &ranking, k).unwrap());
        let utility = ndcg_at_k(&view, &rubric, &ranking, k).unwrap();
        (disparity, utility)
    };
    let (full_disparity, full_utility) = evaluate(&result.bonus);
    let half = result.bonus.scaled(0.5).unwrap();
    let (half_disparity, half_utility) = evaluate(&half);

    assert!(
        full_disparity <= half_disparity + 1e-9,
        "more bonus, less disparity"
    );
    assert!(
        full_utility <= half_utility + 1e-9,
        "more bonus, less utility"
    );
}

#[test]
fn csv_round_trip_preserves_a_generated_cohort() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(500, 3)).generate();
    let text = fair_ranking::data::csv::to_csv_string(cohort.dataset());
    let parsed = fair_ranking::data::csv::from_csv_string(&text).expect("parse");
    assert_eq!(parsed.len(), cohort.dataset().len());
    assert_eq!(
        parsed.fairness_centroid().unwrap(),
        cohort.dataset().fairness_centroid().unwrap()
    );
}
