//! Smoke tests over the experiment harness: the headline experiments run at
//! the tiny scale and reproduce the qualitative shape the paper reports.

use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::{baselines_cmp, compas, table1, utility};
use fair_core::metrics::norm;

fn scale() -> ExperimentScale {
    ExperimentScale {
        dca_iterations: 60,
        ..ExperimentScale::tiny()
    }
}

#[test]
fn table_one_shape_holds_end_to_end() {
    let result = table1::run_table1(&scale()).unwrap();
    let baseline = &result.rows[0];
    let dca = &result.rows[2];
    assert!(norm(&baseline.test_disparity) > 0.15);
    assert!(norm(&dca.test_disparity) < norm(&baseline.test_disparity) * 0.5);
    assert!(result.render().contains("Norm"));
}

#[test]
fn utility_remains_high_after_correction() {
    let result = utility::run_fig1(&scale()).unwrap();
    assert!(result.points.iter().all(|p| p.ndcg > 0.8 && p.ndcg <= 1.0));
}

#[test]
fn quota_is_weaker_than_dca_at_small_k() {
    let quota = baselines_cmp::run_quota(&scale(), 0.7).unwrap();
    let table1 = table1::run_table1(&scale()).unwrap();
    let dca_norm = norm(&table1.rows[2].test_disparity);
    // Quota norm at k = 5% (first grid point).
    let quota_norm = quota.points[0].2;
    assert!(
        dca_norm < quota_norm,
        "DCA {dca_norm} vs quota {quota_norm}"
    );
}

#[test]
fn compas_log_discounted_reduces_average_disparity() {
    let result = compas::run_fig10c(&scale()).unwrap();
    let before: f64 =
        result.rows.iter().map(|r| norm(&r.before)).sum::<f64>() / result.rows.len() as f64;
    let after: f64 =
        result.rows.iter().map(|r| norm(&r.after)).sum::<f64>() / result.rows.len() as f64;
    assert!(after < before);
}
