//! Offline, deterministic drop-in for the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace vendors the few entry points the code relies on:
//!
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 stream of upstream `StdRng`, so exact
//! sequences differ from crates.io `rand`, but every API contract the
//! workspace depends on (determinism for equal seeds, uniformity, sampling
//! without replacement) holds.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the "standard" distribution:
/// floats in `[0, 1)`, integers over their full domain, fair-coin bools.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that support uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; `high` must be strictly greater.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high` must be at least `low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire multiply-shift; bias is span / 2^64, negligible here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // span = high - low + 1 computed in u128 so that ranges
                // ending at the type maximum (e.g. 1..=MAX) don't wrap.
                let span = (high as u128)
                    .wrapping_sub(low as u128)
                    .wrapping_add(1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (high - low) * <$t>::sample_standard(rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                // Closed-interval unit draw (53/24 mantissa bits over
                // 2^bits - 1) so `high` itself is attainable.
                let unit = (rng.next_u64() >> (64 - <$t>::MANTISSA_DIGITS)) as $t
                    / (((1u64 << <$t>::MANTISSA_DIGITS) - 1) as $t);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement (`rand::seq::index`).
    pub mod index {
        use super::super::{Rng, RngCore};

        /// The sampled indices, in selection order.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a plain `Vec<usize>`.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Reusable scratch space for [`sample_into`]: the output indices plus
        /// the internal membership set and shuffle pool, so that repeated
        /// sampling (the DCA hot loop) performs no steady-state allocation.
        #[derive(Clone, Debug, Default)]
        pub struct IndexBuffer {
            out: Vec<usize>,
            chosen: std::collections::HashSet<usize>,
            pool: Vec<usize>,
        }

        impl IndexBuffer {
            /// An empty buffer; capacity grows on first use and is retained.
            #[must_use]
            pub fn new() -> Self {
                Self::default()
            }

            /// The most recently sampled indices, in selection order.
            #[must_use]
            pub fn as_slice(&self) -> &[usize] {
                &self.out
            }

            /// Number of indices currently held.
            #[must_use]
            pub fn len(&self) -> usize {
                self.out.len()
            }

            /// Whether the buffer currently holds no indices.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.out.is_empty()
            }

            /// Fill with `0..length` in order (the "sample everything" case).
            pub fn fill_sequential(&mut self, length: usize) {
                self.out.clear();
                self.out.extend(0..length);
            }

            /// Consume the buffer into its index vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.out
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`.
        ///
        /// Sparse samples (the DCA hot path: a few hundred indices out of a
        /// large dataset) use Floyd's algorithm in O(amount) time and space;
        /// dense samples fall back to a partial Fisher–Yates pass over the
        /// full pool.
        ///
        /// # Panics
        /// Panics if `amount > length`, matching upstream `rand`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let mut buf = IndexBuffer::new();
            sample_into(rng, length, amount, &mut buf);
            IndexVec(buf.into_vec())
        }

        /// Allocation-free variant of [`sample`]: writes the sampled indices
        /// into `buf`, reusing its capacity across calls. The index sequence
        /// for a given RNG state is identical to [`sample`]'s.
        ///
        /// # Panics
        /// Panics if `amount > length`, matching upstream `rand`.
        pub fn sample_into<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
            buf: &mut IndexBuffer,
        ) {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a pool of {length}"
            );
            buf.out.clear();
            if amount * 4 <= length {
                // Floyd's algorithm: each draw lands on an unseen index or is
                // redirected to the newly opened slot `j`, giving a uniform
                // `amount`-subset without materializing the pool.
                buf.chosen.clear();
                for j in (length - amount)..length {
                    let t = rng.gen_range(0..=j);
                    if buf.chosen.insert(t) {
                        buf.out.push(t);
                    } else {
                        buf.chosen.insert(j);
                        buf.out.push(j);
                    }
                }
            } else {
                let pool = &mut buf.pool;
                pool.clear();
                pool.extend(0..length);
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    pool.swap(i, j);
                }
                buf.out.extend_from_slice(&pool[..amount]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5_usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0..=3_u16);
            assert!(w <= 3);
            let f = rng.gen_range(-2.0_f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_ending_at_type_max_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.gen_range(1_u64..=u64::MAX);
            assert!(v >= 1);
            let b = rng.gen_range(250_u8..=u8::MAX);
            assert!(b >= 250);
            let full = rng.gen_range(u64::MIN..=u64::MAX);
            let _ = full;
        }
    }

    #[test]
    fn inclusive_float_range_can_reach_the_upper_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut max_seen = 0.0_f64;
        for _ in 0..100_000 {
            let v = rng.gen_range(0.0_f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
            max_seen = max_seen.max(v);
        }
        // A half-open draw caps out below 1 - 2^-53; the closed draw should
        // get within float-dust of the endpoint over 100k samples.
        assert!(max_seen > 0.9999, "max seen {max_seen}");
    }

    #[test]
    fn index_sample_is_without_replacement() {
        let mut rng = StdRng::seed_from_u64(11);
        // Dense branch (partial Fisher–Yates).
        let mut got = index::sample(&mut rng, 50, 20).into_vec();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|&i| i < 50));
        // Sparse branch (Floyd's algorithm).
        let mut sparse = index::sample(&mut rng, 10_000, 500).into_vec();
        sparse.sort_unstable();
        sparse.dedup();
        assert_eq!(sparse.len(), 500);
        assert!(sparse.iter().all(|&i| i < 10_000));
    }

    #[test]
    fn sparse_index_sample_is_unbiased_across_the_pool() {
        // Mean of a uniform 500-subset of 0..10_000 should estimate the pool
        // midpoint; a Floyd's bug that favored high/low indices would shift it.
        let mut rng = StdRng::seed_from_u64(17);
        let mut total = 0.0_f64;
        let rounds = 200;
        for _ in 0..rounds {
            let s = index::sample(&mut rng, 10_000, 500).into_vec();
            total += s.iter().sum::<usize>() as f64 / s.len() as f64;
        }
        let mean = total / f64::from(rounds);
        assert!((mean - 4_999.5).abs() < 60.0, "mean index {mean}");
    }

    #[test]
    fn sample_into_reproduces_sample_exactly() {
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = StdRng::seed_from_u64(23);
        let mut buf = index::IndexBuffer::new();
        // Cover both the sparse (Floyd) and dense (Fisher–Yates) branches,
        // reusing the one buffer throughout.
        for (length, amount) in [(10_000, 500), (50, 20), (8, 8), (100, 1)] {
            let owned = index::sample(&mut rng_a, length, amount).into_vec();
            index::sample_into(&mut rng_b, length, amount, &mut buf);
            assert_eq!(owned, buf.as_slice(), "length {length} amount {amount}");
            assert_eq!(buf.len(), amount);
            assert!(!buf.is_empty());
        }
        buf.fill_sequential(5);
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
