//! Offline drop-in for the subset of the `proptest` 1.x API this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a compact property-testing harness with the same surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] implemented for numeric ranges, tuples, [`any`], and
//!   [`collection::vec`], plus [`Strategy::prop_filter`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: a failing case panics immediately
//! with the case number, which — generation being a pure function of the
//! case number — is enough to reproduce it.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration: how many random cases each property is checked on.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value. Drawing is a pure function of the RNG state.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Restrict the strategy to values satisfying `predicate`; generation
    /// re-draws until it passes (bounded, then panics naming `reason`).
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Transform every generated value with `func`.
    fn prop_map<F, O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, func }
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    func: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.func)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "any value" strategy (a minimal `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.gen::<f64>() * 1e6;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for an [`Arbitrary`] type (`any::<bool>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: each element from `element`, length uniform in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __runtime {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case RNG: a pure function of the property name and case number so
    /// failures are reproducible and cases are independent.
    #[must_use]
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Assert inside a property; on failure, panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Declare property tests: each `#[test] fn name(pat in strategy, ...) { .. }`
/// expands to a `#[test]` running the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__runtime::case_rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0_u64..1_000).prop_filter("even", |v| v % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3_usize..17, y in -2.0_f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn filters_apply(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec((0.0_f64..1.0, any::<bool>()), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|(x, _)| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn any_bool_produces_both_values() {
        let strategy = any::<bool>();
        let mut seen = [false; 2];
        for case in 0..64 {
            let mut rng = crate::__runtime::case_rng("any_bool", case);
            seen[usize::from(crate::Strategy::generate(&strategy, &mut rng))] = true;
        }
        assert!(seen[0] && seen[1], "64 cases should produce both bools");
    }
}
