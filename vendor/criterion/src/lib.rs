//! Offline drop-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. The build environment has no crates.io access,
//! so the workspace vendors a lightweight harness with the same surface:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine it runs a short warm-up, then
//! times a fixed batch per benchmark and prints the mean wall-clock time —
//! enough for `cargo bench` to produce comparable numbers offline.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert to the printable id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean execution time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the offline harness keeps its fixed
    /// iteration count instead of a time budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported offline.
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_size, routine);
        self
    }

    /// Benchmark `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, self.sample_size, |b| routine(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the offline harness).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark `routine` without a group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&id.into_id(), sample_size, routine);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut routine: F) {
        let mut bencher = Bencher {
            iterations: sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
        };
        println!(
            "{id:<60} mean {mean:>12.3?}  ({} iters)",
            bencher.iterations
        );
    }
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_routine() {
        let mut c = Criterion::default();
        let mut calls = 0_u32;
        {
            let mut group = c.benchmark_group("smoke");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(1));
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // warm-up + 3 timed iterations
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
